// Gbo: construction/destruction, schema definition, record operations, and
// queries. Unit lifecycle and the background I/O machinery live in
// gbo_units.cc.
//
// Sharding (DESIGN.md §10): queries and unit cache hits route by hash to
// one of metadata_shards stripes and take only that stripe's lock; the
// global mu_ is reserved for schema changes, record ownership, the I/O
// queues and the memory budget. Routing functions:
//   unit name → std::hash<std::string>(name) % shards
//   record key → hash(type name) ⊕ hash(encoded key) · φ  % shards
#include "core/gbo.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/unit_context.h"

namespace godiva {

std::string_view UnitStateName(UnitState state) {
  switch (state) {
    case UnitState::kQueued:
      return "QUEUED";
    case UnitState::kLoading:
      return "LOADING";
    case UnitState::kReady:
      return "READY";
    case UnitState::kFailed:
      return "FAILED";
    case UnitState::kDeleted:
      return "DELETED";
  }
  return "INVALID";
}

namespace {

int ClampShardCount(int requested) {
  return std::clamp(requested, 1, lock_rank::kGboMaxShards);
}

}  // namespace

Gbo::Gbo(GboOptions options)
    : options_(options), memory_limit_(options.memory_limit_bytes) {
  int shard_count = ClampShardCount(options_.metadata_shards);
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    // Distinct ranks per shard: the lock-rank checker then rejects any
    // out-of-order multi-shard acquisition at run time.
    shards_.push_back(std::make_unique<Shard>(lock_rank::kGboShardBase + i,
                                              "Gbo::shard"));
  }
  if (options_.background_io) {
    size_t pool_size =
        static_cast<size_t>(std::max(1, options_.io_threads));
    io_busy_.reserve(pool_size);
    io_threads_.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) {
      io_busy_.push_back(std::make_unique<TimeAccumulator>());
    }
    // Spawn only after io_busy_ is fully built: threads index into it.
    for (size_t i = 0; i < pool_size; ++i) {
      io_threads_.emplace_back([this, i] { IoThreadMain(i); });
    }
  }
}

Gbo::~Gbo() {
  {
    MutexLock lock(&mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  queue_cv_.NotifyAll();
  memory_cv_.NotifyAll();
  // Lock/unlock each shard before notifying its waiters: a waiter between
  // its predicate check and its wait enqueue holds the shard lock, so
  // acquiring it here guarantees every waiter observes shutdown_ or is
  // already enqueued when the notify lands.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(&shard->mu);
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->unit_cv.NotifyAll();
  }
  for (Thread& thread : io_threads_) {
    if (thread.joinable()) thread.join();
  }
}

// ---------------------------------------------------------------------
// Shard routing.

size_t Gbo::ShardIndexOfUnitName(const std::string& unit_name) const {
  return std::hash<std::string>{}(unit_name) % shards_.size();
}

Gbo::Shard& Gbo::ShardOfUnitName(const std::string& unit_name) const {
  return *shards_[ShardIndexOfUnitName(unit_name)];
}

size_t Gbo::ShardIndexOfKey(const RecordType* type,
                            const std::string& encoded_key) const {
  // Mix the type name in so two types sharing key bytes spread
  // independently; the golden-ratio multiplier decorrelates the hashes.
  size_t h = std::hash<std::string>{}(type->name()) ^
             (std::hash<std::string>{}(encoded_key) * 0x9e3779b97f4a7c15ULL);
  return h % shards_.size();
}

// ---------------------------------------------------------------------
// Schema.

Status Gbo::DefineField(const std::string& name, DataType type,
                        int64_t size_bytes) {
  if (name.empty()) return InvalidArgumentError("field name is empty");
  if (size_bytes != kUnknownSize &&
      (size_bytes < 0 || size_bytes % SizeOf(type) != 0)) {
    return InvalidArgumentError(
        StrCat("field ", name, ": invalid default size ", size_bytes));
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = field_types_.try_emplace(name);
  if (!inserted) {
    return AlreadyExistsError(StrCat("field type already defined: ", name));
  }
  it->second = std::make_unique<FieldTypeDef>(
      FieldTypeDef{name, type, size_bytes});
  return Status::Ok();
}

Status Gbo::DefineRecord(const std::string& name, int num_key_fields) {
  if (name.empty()) return InvalidArgumentError("record type name is empty");
  if (num_key_fields < 0) {
    return InvalidArgumentError("negative key field count");
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = record_types_.try_emplace(name);
  if (!inserted) {
    return AlreadyExistsError(StrCat("record type already defined: ", name));
  }
  it->second = std::make_unique<RecordType>(name, num_key_fields);
  return Status::Ok();
}

Status Gbo::InsertField(const std::string& record_type,
                        const std::string& field_name, bool is_key) {
  MutexLock lock(&mu_);
  auto type_it = record_types_.find(record_type);
  if (type_it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  auto field_it = field_types_.find(field_name);
  if (field_it == field_types_.end()) {
    return NotFoundError(StrCat("no field type named ", field_name));
  }
  return type_it->second->AddMember(field_it->second.get(), is_key);
}

void Gbo::PublishSchemaSnapshotLocked() {
  auto snapshot = std::make_unique<SchemaSnapshot>();
  for (const auto& [name, type] : record_types_) {
    if (type->committed()) snapshot->types[name] = type.get();
  }
  // Readers may still hold the previous snapshot pointer; retire it to
  // schema_history_ instead of freeing (types commit rarely — once per
  // schema in practice — so the history stays tiny).
  schema_snapshot_.store(snapshot.get(), std::memory_order_release);
  schema_history_.push_back(std::move(snapshot));
}

Status Gbo::CommitRecordType(const std::string& record_type) {
  MutexLock lock(&mu_);
  auto it = record_types_.find(record_type);
  if (it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  GODIVA_RETURN_IF_ERROR(it->second->Commit());
  PublishSchemaSnapshotLocked();
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Records.

Result<RecordType*> Gbo::FindCommittedTypeLocked(
    const std::string& record_type) {
  auto it = record_types_.find(record_type);
  if (it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  if (!it->second->committed()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " is not committed"));
  }
  return it->second.get();
}

Result<RecordType*> Gbo::ResolveCommittedType(const std::string& record_type) {
  const SchemaSnapshot* snapshot =
      schema_snapshot_.load(std::memory_order_acquire);
  if (snapshot != nullptr) {
    auto it = snapshot->types.find(record_type);
    if (it != snapshot->types.end()) return it->second;
  }
  // Miss: the type is unknown, uncommitted, or committed after this
  // snapshot. Fall back to mu_ for the exact error (or the fresh type).
  MutexLock lock(&mu_);
  return FindCommittedTypeLocked(record_type);
}

Result<Record*> Gbo::NewRecord(const std::string& record_type) {
  MutexLock lock(&mu_);
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          FindCommittedTypeLocked(record_type));
  auto record = std::make_unique<Record>(type);
  Record* raw = record.get();

  // Eagerly allocate all fixed-size field buffers (paper §3.1).
  const std::vector<RecordType::Member>& members = type->members();
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].field->has_known_size()) {
      GODIVA_ASSIGN_OR_RETURN(
          int64_t charged,
          raw->AllocateSlot(static_cast<int>(i),
                            members[i].field->default_size));
      (void)charged;  // accounted below via MemoryUsage()
    }
  }

  // Bind to the unit currently being read on this thread, if any. The
  // unit's record list and byte count are shard state.
  if (const std::string* unit_name = internal_unit_context::Current(this)) {
    Shard& s = ShardOfUnitName(*unit_name);
    MutexLock shard_lock(&s.mu);
    auto unit_it = s.units.find(*unit_name);
    if (unit_it != s.units.end()) {
      unit_it->second->records.push_back(raw);
      unit_it->second->memory_bytes += raw->MemoryUsage();
      raw->unit_ = *unit_name;
    }
  }

  records_[raw] = std::move(record);
  ++counters_.records_created;
  ChargeMemoryLocked(raw->MemoryUsage());
  EvictToLimitLocked();
  return raw;
}

Result<void*> Gbo::AllocFieldBuffer(Record* record,
                                    const std::string& field_name,
                                    int64_t size_bytes) {
  MutexLock lock(&mu_);
  auto rec_it = records_.find(record);
  if (rec_it == records_.end()) {
    return InvalidArgumentError("unknown record handle");
  }
  int index = record->type().FindMemberIndex(field_name);
  if (index < 0) {
    return NotFoundError(StrCat("record type ", record->type().name(),
                                " has no field ", field_name));
  }
  int64_t charged = 0;
  if (record->committed_ && !record->key_.empty()) {
    // The record is already published through its key index, so lookups
    // on its key shard may be reading the slot table concurrently:
    // mutate it under that shard's lock.
    Shard& key_shard = *shards_[ShardIndexOfKey(&record->type(),
                                                record->key_)];
    MutexLock key_lock(&key_shard.mu);
    GODIVA_ASSIGN_OR_RETURN(charged,
                            record->AllocateSlot(index, size_bytes));
  } else {
    GODIVA_ASSIGN_OR_RETURN(charged,
                            record->AllocateSlot(index, size_bytes));
  }
  if (!record->unit_.empty()) {
    Shard& s = ShardOfUnitName(record->unit_);
    MutexLock shard_lock(&s.mu);
    auto unit_it = s.units.find(record->unit_);
    if (unit_it != s.units.end()) unit_it->second->memory_bytes += charged;
  }
  ChargeMemoryLocked(charged);
  EvictToLimitLocked();
  return record->slot_data(index);
}

Status Gbo::CommitRecord(Record* record) {
  MutexLock lock(&mu_);
  auto rec_it = records_.find(record);
  if (rec_it == records_.end()) {
    return InvalidArgumentError("unknown record handle");
  }
  if (record->committed_) {
    return FailedPreconditionError("record is already committed");
  }
  const RecordType* type = &record->type();
  if (type->key_member_indices().empty()) {
    record->committed_ = true;  // keyless types are not indexed
    ++counters_.records_committed;
    return Status::Ok();
  }
  GODIVA_ASSIGN_OR_RETURN(std::string key, record->EncodeKey());
  // Publish into the owning key shard's index slice. Identical keys hash
  // to the same shard, so the per-shard try_emplace still enforces global
  // key uniqueness.
  Shard& key_shard = *shards_[ShardIndexOfKey(type, key)];
  {
    MutexLock key_lock(&key_shard.mu);
    auto [it, inserted] = key_shard.indexes[type].try_emplace(key, record);
    if (!inserted) {
      return AlreadyExistsError(
          StrCat("a record of type ", type->name(),
                 " with the same key is already committed"));
    }
    record->key_ = std::move(key);
    record->committed_ = true;
  }
  ++counters_.records_committed;
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Queries (the sharded hot path: one shard lock, no mu_ once the type
// resolves through the schema snapshot).

Status Gbo::EncodeLookupKey(const RecordType& type,
                            const std::vector<std::string>& key_values,
                            std::string* key) {
  const std::vector<int>& key_indices = type.key_member_indices();
  if (key_values.size() != key_indices.size()) {
    return InvalidArgumentError(StrFormat(
        "record type %s has %d key fields, got %d key values",
        type.name().c_str(), static_cast<int>(key_indices.size()),
        static_cast<int>(key_values.size())));
  }
  key->clear();
  key->reserve(static_cast<size_t>(type.key_bytes()));
  for (size_t i = 0; i < key_indices.size(); ++i) {
    const FieldTypeDef* field = type.members()[key_indices[i]].field;
    if (static_cast<int64_t>(key_values[i].size()) != field->default_size) {
      return InvalidArgumentError(StrFormat(
          "key value %d for field %s has %d bytes, expected %lld",
          static_cast<int>(i), field->name.c_str(),
          static_cast<int>(key_values[i].size()),
          static_cast<long long>(field->default_size)));
    }
    key->append(key_values[i]);
  }
  return Status::Ok();
}

Result<Record*> Gbo::FindRecordShardLocked(Shard& s, const RecordType* type,
                                           const std::string& record_type,
                                           const std::string& key) {
  s.key_lookups.fetch_add(1, std::memory_order_relaxed);
  auto index_it = s.indexes.find(type);
  if (index_it != s.indexes.end()) {
    auto it = index_it->second.find(key);
    if (it != index_it->second.end()) return it->second;
  }
  s.failed_lookups.fetch_add(1, std::memory_order_relaxed);
  return NotFoundError(
      StrCat("no record of type ", record_type, " with the given key"));
}

Result<Record*> Gbo::FindRecord(const std::string& record_type,
                                const std::vector<std::string>& key_values) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          ResolveCommittedType(record_type));
  if (type->key_member_indices().empty()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " has no key fields"));
  }
  std::string key;
  GODIVA_RETURN_IF_ERROR(EncodeLookupKey(*type, key_values, &key));
  Shard& s = *shards_[ShardIndexOfKey(type, key)];
  MutexLock lock(&s.mu);
  return FindRecordShardLocked(s, type, record_type, key);
}

Result<void*> Gbo::GetFieldBuffer(const std::string& record_type,
                                  const std::string& field_name,
                                  const std::vector<std::string>& key_values) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          ResolveCommittedType(record_type));
  if (type->key_member_indices().empty()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " has no key fields"));
  }
  std::string key;
  GODIVA_RETURN_IF_ERROR(EncodeLookupKey(*type, key_values, &key));
  Shard& s = *shards_[ShardIndexOfKey(type, key)];
  MutexLock lock(&s.mu);
  GODIVA_ASSIGN_OR_RETURN(Record * record,
                          FindRecordShardLocked(s, type, record_type, key));
  return record->FieldBuffer(field_name);
}

Result<int64_t> Gbo::GetFieldBufferSize(
    const std::string& record_type, const std::string& field_name,
    const std::vector<std::string>& key_values) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          ResolveCommittedType(record_type));
  if (type->key_member_indices().empty()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " has no key fields"));
  }
  std::string key;
  GODIVA_RETURN_IF_ERROR(EncodeLookupKey(*type, key_values, &key));
  Shard& s = *shards_[ShardIndexOfKey(type, key)];
  MutexLock lock(&s.mu);
  GODIVA_ASSIGN_OR_RETURN(Record * record,
                          FindRecordShardLocked(s, type, record_type, key));
  return record->FieldBufferSize(field_name);
}

Result<Gbo::RawField> Gbo::GetFieldRaw(
    const std::string& record_type, const std::string& field_name,
    const std::vector<std::string>& key_values, int64_t elem_size) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          ResolveCommittedType(record_type));
  if (type->key_member_indices().empty()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " has no key fields"));
  }
  std::string key;
  GODIVA_RETURN_IF_ERROR(EncodeLookupKey(*type, key_values, &key));
  Shard& s = *shards_[ShardIndexOfKey(type, key)];
  MutexLock lock(&s.mu);
  GODIVA_ASSIGN_OR_RETURN(Record * record,
                          FindRecordShardLocked(s, type, record_type, key));
  int index = record->type().FindMemberIndex(field_name);
  if (index < 0) {
    return NotFoundError(StrCat("no field named ", field_name));
  }
  const FieldTypeDef* field = record->type().members()[index].field;
  if (elem_size != SizeOf(field->type)) {
    return InvalidArgumentError(StrCat(
        "element type size mismatch for field ", field_name));
  }
  if (!record->slot_allocated(index)) {
    return FailedPreconditionError(StrCat(
        "field buffer not allocated: ", field_name));
  }
  return RawField{record->slot_data(index), record->slot_size(index)};
}

Result<std::vector<Record*>> Gbo::ListRecords(const std::string& record_type) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          ResolveCommittedType(record_type));
  // Merge the per-shard index slices in global key order. Shards are
  // visited in index order (the documented multi-shard lock order), each
  // released before the next is taken — a cross-shard-consistent snapshot
  // is not needed, only per-shard consistency.
  std::vector<std::pair<std::string, Record*>> keyed;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock lock(&shard->mu);
    auto index_it = shard->indexes.find(type);
    if (index_it == shard->indexes.end()) continue;
    keyed.reserve(keyed.size() + index_it->second.size());
    for (const auto& [key, record] : index_it->second) {
      keyed.emplace_back(key, record);
    }
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Record*> out;
  out.reserve(keyed.size());
  for (const auto& [key, record] : keyed) out.push_back(record);
  return out;
}

Result<std::vector<Record*>> Gbo::RecordsInUnit(const std::string& unit_name) {
  Shard& s = ShardOfUnitName(unit_name);
  MutexLock lock(&s.mu);
  auto it = s.units.find(unit_name);
  if (it == s.units.end()) {
    return NotFoundError(StrCat("no unit named ", unit_name));
  }
  return it->second->records;
}

// ---------------------------------------------------------------------
// Introspection.

GboStats Gbo::stats() const {
  MutexLock lock(&mu_);
  GboStats out = counters_;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    out.key_lookups += shard->key_lookups.load(std::memory_order_relaxed);
    out.failed_lookups +=
        shard->failed_lookups.load(std::memory_order_relaxed);
    out.unit_cache_hits +=
        shard->unit_cache_hits.load(std::memory_order_relaxed);
    out.lru_touches += shard->lru_touches.load(std::memory_order_relaxed);
  }
  out.watch_notifications =
      watch_notifications_.load(std::memory_order_relaxed);
  out.current_memory_bytes = memory_used_.load(std::memory_order_relaxed);
  out.visible_io_seconds = visible_io_time_.TotalSeconds();
  out.read_fn_seconds = read_fn_time_.TotalSeconds();
  out.prefetch_seconds = prefetch_time_.TotalSeconds();
  out.io_thread_busy_seconds.reserve(io_busy_.size());
  for (const std::unique_ptr<TimeAccumulator>& busy : io_busy_) {
    double seconds = busy->TotalSeconds();
    out.io_thread_busy_seconds.push_back(seconds);
    out.io_busy_seconds += seconds;
  }
  return out;
}

int64_t Gbo::memory_usage() const {
  return memory_used_.load(std::memory_order_relaxed);
}

int64_t Gbo::memory_limit() const {
  return memory_limit_.load(std::memory_order_relaxed);
}

std::string Gbo::DebugString() const {
  MutexLock lock(&mu_);
  std::string out =
      StrCat("Gbo{",
             options_.background_io
                 ? StrCat("multi-thread (", io_threads_.size(),
                          " I/O threads)")
                 : "single-thread",
             ", ", shards_.size(), shards_.size() == 1 ? " shard" : " shards",
             ", mem ",
             FormatBytes(memory_used_.load(std::memory_order_relaxed)), "/",
             FormatBytes(memory_limit_.load(std::memory_order_relaxed)),
             "\n");
  // Indexed-record counts per type, summed over the shard slices.
  std::map<const RecordType*, size_t> indexed_counts;
  size_t evictable_total = 0;
  // (name, description) pairs gathered shard by shard, then merged so the
  // listing stays name-sorted like the single-map original.
  std::vector<std::pair<std::string, std::string>> unit_lines;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MutexLock shard_lock(&shard->mu);
    for (const auto& [type, index] : shard->indexes) {
      indexed_counts[type] += index.size();
    }
    evictable_total += shard->evictable.size();
    for (const auto& [name, unit] : shard->units) {
      unit_lines.emplace_back(
          name,
          StrCat("    ", name, ": ", UnitStateName(unit->state), ", ",
                 unit->records.size(), " records, ",
                 FormatBytes(unit->memory_bytes), ", refcount ",
                 unit->refcount, unit->finished ? ", finished" : "", "\n"));
    }
  }
  out += "  record types:\n";
  for (const auto& [name, type] : record_types_) {
    auto count_it = indexed_counts.find(type.get());
    size_t indexed = count_it == indexed_counts.end() ? 0 : count_it->second;
    out += StrCat("    ", name, ": ", type->members().size(), " fields, ",
                  type->key_member_indices().size(), " keys, ", indexed,
                  " records", type->committed() ? "" : " (uncommitted)",
                  "\n");
  }
  out += "  units:\n";
  std::sort(unit_lines.begin(), unit_lines.end());
  for (const auto& [name, line] : unit_lines) out += line;
  out += StrCat("  prefetch queue: ", prefetch_queue_.size(),
                ", demand queue: ", demand_queue_.size(),
                ", loading: ", loads_in_flight_,
                ", evictable: ", evictable_total, "}");
  return out;
}

}  // namespace godiva
