// Gbo: construction/destruction, schema definition, record operations, and
// queries. Unit lifecycle and the background I/O machinery live in
// gbo_units.cc.
#include "core/gbo.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/unit_context.h"

namespace godiva {

std::string_view UnitStateName(UnitState state) {
  switch (state) {
    case UnitState::kQueued:
      return "QUEUED";
    case UnitState::kLoading:
      return "LOADING";
    case UnitState::kReady:
      return "READY";
    case UnitState::kFailed:
      return "FAILED";
    case UnitState::kDeleted:
      return "DELETED";
  }
  return "INVALID";
}

Gbo::Gbo(GboOptions options)
    : options_(options), memory_limit_(options.memory_limit_bytes) {
  if (options_.background_io) {
    size_t pool_size =
        static_cast<size_t>(std::max(1, options_.io_threads));
    io_busy_.reserve(pool_size);
    io_threads_.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) {
      io_busy_.push_back(std::make_unique<TimeAccumulator>());
    }
    // Spawn only after io_busy_ is fully built: threads index into it.
    for (size_t i = 0; i < pool_size; ++i) {
      io_threads_.emplace_back([this, i] { IoThreadMain(i); });
    }
  }
}

Gbo::~Gbo() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  queue_cv_.NotifyAll();
  memory_cv_.NotifyAll();
  unit_cv_.NotifyAll();
  for (std::thread& thread : io_threads_) {
    if (thread.joinable()) thread.join();
  }
}

// ---------------------------------------------------------------------
// Schema.

Status Gbo::DefineField(const std::string& name, DataType type,
                        int64_t size_bytes) {
  if (name.empty()) return InvalidArgumentError("field name is empty");
  if (size_bytes != kUnknownSize &&
      (size_bytes < 0 || size_bytes % SizeOf(type) != 0)) {
    return InvalidArgumentError(
        StrCat("field ", name, ": invalid default size ", size_bytes));
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = field_types_.try_emplace(name);
  if (!inserted) {
    return AlreadyExistsError(StrCat("field type already defined: ", name));
  }
  it->second = std::make_unique<FieldTypeDef>(
      FieldTypeDef{name, type, size_bytes});
  return Status::Ok();
}

Status Gbo::DefineRecord(const std::string& name, int num_key_fields) {
  if (name.empty()) return InvalidArgumentError("record type name is empty");
  if (num_key_fields < 0) {
    return InvalidArgumentError("negative key field count");
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = record_types_.try_emplace(name);
  if (!inserted) {
    return AlreadyExistsError(StrCat("record type already defined: ", name));
  }
  it->second = std::make_unique<RecordType>(name, num_key_fields);
  return Status::Ok();
}

Status Gbo::InsertField(const std::string& record_type,
                        const std::string& field_name, bool is_key) {
  MutexLock lock(&mu_);
  auto type_it = record_types_.find(record_type);
  if (type_it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  auto field_it = field_types_.find(field_name);
  if (field_it == field_types_.end()) {
    return NotFoundError(StrCat("no field type named ", field_name));
  }
  return type_it->second->AddMember(field_it->second.get(), is_key);
}

Status Gbo::CommitRecordType(const std::string& record_type) {
  MutexLock lock(&mu_);
  auto it = record_types_.find(record_type);
  if (it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  return it->second->Commit();
}

// ---------------------------------------------------------------------
// Records.

Result<RecordType*> Gbo::FindCommittedTypeLocked(
    const std::string& record_type) {
  auto it = record_types_.find(record_type);
  if (it == record_types_.end()) {
    return NotFoundError(StrCat("no record type named ", record_type));
  }
  if (!it->second->committed()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " is not committed"));
  }
  return it->second.get();
}

Result<Record*> Gbo::NewRecord(const std::string& record_type) {
  MutexLock lock(&mu_);
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          FindCommittedTypeLocked(record_type));
  auto record = std::make_unique<Record>(type);
  Record* raw = record.get();

  // Eagerly allocate all fixed-size field buffers (paper §3.1).
  const std::vector<RecordType::Member>& members = type->members();
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].field->has_known_size()) {
      GODIVA_ASSIGN_OR_RETURN(
          int64_t charged,
          raw->AllocateSlot(static_cast<int>(i),
                            members[i].field->default_size));
      (void)charged;  // accounted below via MemoryUsage()
    }
  }

  // Bind to the unit currently being read on this thread, if any.
  Unit* unit = nullptr;
  if (const std::string* unit_name = internal_unit_context::Current(this)) {
    auto unit_it = units_.find(*unit_name);
    if (unit_it != units_.end()) {
      unit = unit_it->second.get();
      unit->records.push_back(raw);
      raw->unit_ = *unit_name;
    }
  }

  records_[raw] = std::move(record);
  ++counters_.records_created;
  ChargeMemoryLocked(unit, raw->MemoryUsage());
  EvictToLimitLocked();
  return raw;
}

Result<void*> Gbo::AllocFieldBuffer(Record* record,
                                    const std::string& field_name,
                                    int64_t size_bytes) {
  MutexLock lock(&mu_);
  auto rec_it = records_.find(record);
  if (rec_it == records_.end()) {
    return InvalidArgumentError("unknown record handle");
  }
  int index = record->type().FindMemberIndex(field_name);
  if (index < 0) {
    return NotFoundError(StrCat("record type ", record->type().name(),
                                " has no field ", field_name));
  }
  GODIVA_ASSIGN_OR_RETURN(int64_t charged,
                          record->AllocateSlot(index, size_bytes));
  Unit* unit = nullptr;
  if (!record->unit_.empty()) {
    auto unit_it = units_.find(record->unit_);
    if (unit_it != units_.end()) unit = unit_it->second.get();
  }
  ChargeMemoryLocked(unit, charged);
  EvictToLimitLocked();
  return record->slot_data(index);
}

Status Gbo::CommitRecord(Record* record) {
  MutexLock lock(&mu_);
  auto rec_it = records_.find(record);
  if (rec_it == records_.end()) {
    return InvalidArgumentError("unknown record handle");
  }
  if (record->committed_) {
    return FailedPreconditionError("record is already committed");
  }
  const RecordType* type = &record->type();
  if (type->key_member_indices().empty()) {
    record->committed_ = true;  // keyless types are not indexed
    ++counters_.records_committed;
    return Status::Ok();
  }
  GODIVA_ASSIGN_OR_RETURN(std::string key, record->EncodeKey());
  std::map<std::string, Record*>& index = indexes_[type];
  auto [it, inserted] = index.try_emplace(key, record);
  if (!inserted) {
    return AlreadyExistsError(
        StrCat("a record of type ", type->name(),
               " with the same key is already committed"));
  }
  record->key_ = std::move(key);
  record->committed_ = true;
  ++counters_.records_committed;
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Queries.

Status Gbo::EncodeLookupKeyLocked(const RecordType& type,
                                  const std::vector<std::string>& key_values,
                                  std::string* key) const {
  const std::vector<int>& key_indices = type.key_member_indices();
  if (key_values.size() != key_indices.size()) {
    return InvalidArgumentError(StrFormat(
        "record type %s has %d key fields, got %d key values",
        type.name().c_str(), static_cast<int>(key_indices.size()),
        static_cast<int>(key_values.size())));
  }
  key->clear();
  key->reserve(static_cast<size_t>(type.key_bytes()));
  for (size_t i = 0; i < key_indices.size(); ++i) {
    const FieldTypeDef* field = type.members()[key_indices[i]].field;
    if (static_cast<int64_t>(key_values[i].size()) != field->default_size) {
      return InvalidArgumentError(StrFormat(
          "key value %d for field %s has %d bytes, expected %lld",
          static_cast<int>(i), field->name.c_str(),
          static_cast<int>(key_values[i].size()),
          static_cast<long long>(field->default_size)));
    }
    key->append(key_values[i]);
  }
  return Status::Ok();
}

Result<Record*> Gbo::FindRecordLocked(
    const std::string& record_type,
    const std::vector<std::string>& key_values) {
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          FindCommittedTypeLocked(record_type));
  if (type->key_member_indices().empty()) {
    return FailedPreconditionError(
        StrCat("record type ", record_type, " has no key fields"));
  }
  std::string key;
  GODIVA_RETURN_IF_ERROR(EncodeLookupKeyLocked(*type, key_values, &key));
  ++counters_.key_lookups;
  auto index_it = indexes_.find(type);
  if (index_it != indexes_.end()) {
    auto it = index_it->second.find(key);
    if (it != index_it->second.end()) return it->second;
  }
  ++counters_.failed_lookups;
  return NotFoundError(
      StrCat("no record of type ", record_type, " with the given key"));
}

Result<Record*> Gbo::FindRecord(const std::string& record_type,
                                const std::vector<std::string>& key_values) {
  MutexLock lock(&mu_);
  return FindRecordLocked(record_type, key_values);
}

Result<void*> Gbo::GetFieldBuffer(const std::string& record_type,
                                  const std::string& field_name,
                                  const std::vector<std::string>& key_values) {
  MutexLock lock(&mu_);
  GODIVA_ASSIGN_OR_RETURN(Record * record,
                          FindRecordLocked(record_type, key_values));
  return record->FieldBuffer(field_name);
}

Result<int64_t> Gbo::GetFieldBufferSize(
    const std::string& record_type, const std::string& field_name,
    const std::vector<std::string>& key_values) {
  MutexLock lock(&mu_);
  GODIVA_ASSIGN_OR_RETURN(Record * record,
                          FindRecordLocked(record_type, key_values));
  return record->FieldBufferSize(field_name);
}

Result<std::vector<Record*>> Gbo::ListRecords(const std::string& record_type) {
  MutexLock lock(&mu_);
  GODIVA_ASSIGN_OR_RETURN(RecordType * type,
                          FindCommittedTypeLocked(record_type));
  std::vector<Record*> out;
  auto index_it = indexes_.find(type);
  if (index_it != indexes_.end()) {
    out.reserve(index_it->second.size());
    for (const auto& [key, record] : index_it->second) out.push_back(record);
  }
  return out;
}

Result<std::vector<Record*>> Gbo::RecordsInUnit(const std::string& unit_name) {
  MutexLock lock(&mu_);
  auto it = units_.find(unit_name);
  if (it == units_.end()) {
    return NotFoundError(StrCat("no unit named ", unit_name));
  }
  return it->second->records;
}

// ---------------------------------------------------------------------
// Introspection.

GboStats Gbo::stats() const {
  MutexLock lock(&mu_);
  GboStats out = counters_;
  out.current_memory_bytes = memory_used_;
  out.visible_io_seconds = visible_io_time_.TotalSeconds();
  out.read_fn_seconds = read_fn_time_.TotalSeconds();
  out.prefetch_seconds = prefetch_time_.TotalSeconds();
  out.io_thread_busy_seconds.reserve(io_busy_.size());
  for (const std::unique_ptr<TimeAccumulator>& busy : io_busy_) {
    double seconds = busy->TotalSeconds();
    out.io_thread_busy_seconds.push_back(seconds);
    out.io_busy_seconds += seconds;
  }
  return out;
}

int64_t Gbo::memory_usage() const {
  MutexLock lock(&mu_);
  return memory_used_;
}

int64_t Gbo::memory_limit() const {
  MutexLock lock(&mu_);
  return memory_limit_;
}

std::string Gbo::DebugString() const {
  MutexLock lock(&mu_);
  std::string out =
      StrCat("Gbo{",
             options_.background_io
                 ? StrCat("multi-thread (", io_threads_.size(),
                          " I/O threads)")
                 : "single-thread",
             ", mem ", FormatBytes(memory_used_), "/",
             FormatBytes(memory_limit_), "\n");
  out += "  record types:\n";
  for (const auto& [name, type] : record_types_) {
    auto index_it = indexes_.find(type.get());
    size_t indexed =
        index_it == indexes_.end() ? 0 : index_it->second.size();
    out += StrCat("    ", name, ": ", type->members().size(), " fields, ",
                  type->key_member_indices().size(), " keys, ", indexed,
                  " records", type->committed() ? "" : " (uncommitted)",
                  "\n");
  }
  out += "  units:\n";
  for (const auto& [name, unit] : units_) {
    out += StrCat("    ", name, ": ", UnitStateName(unit->state), ", ",
                  unit->records.size(), " records, ",
                  FormatBytes(unit->memory_bytes), ", refcount ",
                  unit->refcount, unit->finished ? ", finished" : "", "\n");
  }
  out += StrCat("  prefetch queue: ", prefetch_queue_.size(),
                ", demand queue: ", demand_queue_.size(),
                ", loading: ", loads_in_flight_,
                ", evictable: ", evictable_.size(), "}");
  return out;
}

}  // namespace godiva
