#include "core/query.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/options.h"

namespace godiva {

// ---------------------------------------------------------------------------
// QueryPlanner
// ---------------------------------------------------------------------------

Result<std::unique_ptr<QueryTicket>> QueryPlanner::Submit(GboQuery query) {
  if (query.units.empty()) {
    return InvalidArgumentError("query names no units");
  }
  std::unique_ptr<QueryTicket> ticket(
      new QueryTicket(db_, session_, std::move(query)));
  // On failure the destructor withdraws whatever was dispatched and
  // releases every probe pin already taken, so nothing stays held.
  GODIVA_RETURN_IF_ERROR(ticket->SubmitInternal());
  return ticket;
}

// ---------------------------------------------------------------------------
// QueryTicket
// ---------------------------------------------------------------------------

QueryTicket::QueryTicket(Gbo* db, GboSession* session, GboQuery query)
    : db_(db), session_(session), query_(std::move(query)) {}

QueryTicket::~QueryTicket() {
  // Best-effort teardown; each step tolerates the previous having already
  // run (Cancel and FinishAll are idempotent).
  // lint: discard_ok(destructor teardown)
  (void)WithdrawOutstanding(AbortedError("query ticket destroyed"));
  if (watch_registered_) {
    // Blocks until in-flight OnEvent deliveries drain, so no callback can
    // touch freed ticket state.
    // lint: discard_ok(destructor teardown)
    (void)db_->UnregisterWatch(watch_id_);
  }
  (void)FinishAll();  // lint: discard_ok(destructor teardown)
}

Status QueryTicket::SubmitInternal() {
  if (query_.deadline > Duration::zero()) {
    has_deadline_ = true;
    deadline_ = Now() + query_.deadline;
  }

  // Phase 1: index the plan. No I/O yet; failures here leave nothing held.
  {
    MutexLock lock(&mu_);
    progress_.reserve(query_.units.size());
    for (size_t i = 0; i < query_.units.size(); ++i) {
      const QueryUnitSpec& spec = query_.units[i];
      if (spec.name.empty()) {
        return InvalidArgumentError("query unit name is empty");
      }
      if (!index_.emplace(spec.name, i).second) {
        return InvalidArgumentError(
            StrCat("duplicate unit ", spec.name, " in query"));
      }
      if (session_ != nullptr && !session_->InNamespaceView(spec.name)) {
        return InvalidArgumentError(StrCat(
            "unit ", spec.name, " is outside the session namespace"));
      }
      UnitProgress progress;
      progress.name = spec.name;
      progress.bytes = spec.bytes;
      progress_.push_back(std::move(progress));
      ++stats_.units_requested;
      stats_.bytes_requested += spec.bytes;
    }
  }

  // Register the watch before probing: a unit that is kInFlight at probe
  // time may settle at any moment, and the settle event must not race past
  // an unregistered watch. Events for names outside the plan are dropped
  // by OnEvent's index lookup.
  watch_id_ = db_->RegisterWatch(
      "*", [this](const Gbo::WatchEvent& event) { OnEvent(event); });
  watch_registered_ = true;

  // Phase 2: probe/dedup every unit, dispatch the misses.
  std::vector<SessionBatchRequest> misses;
  for (size_t i = 0; i < query_.units.size(); ++i) {
    QueryUnitSpec& spec = query_.units[i];
    const Gbo::UnitProbe probe = db_->ProbeUnitForPlan(spec.name);
    if (probe == Gbo::UnitProbe::kResident) {
      // ProbeUnitForPlan pinned it for us — one shard lock, no queue
      // round-trip. Fold the pin into the session's accounting so quotas
      // and Close() see it.
      if (session_ != nullptr) {
        Status adopted = session_->AdoptPlanPin(spec.name, /*elapsed_ms=*/0.0);
        if (!adopted.ok()) {
          // lint: discard_ok(rolling back the probe pin)
          (void)db_->FinishUnit(spec.name);
          return adopted;
        }
      }
      MutexLock lock(&mu_);
      progress_[i].disposition = QueryDisposition::kResident;
      progress_[i].settled = true;
      progress_[i].pinned = true;
      ++stats_.dedup_resident;
      stats_.bytes_saved += spec.bytes;
      cv_.NotifyAll();
      continue;
    }
    if (probe == Gbo::UnitProbe::kInFlight) {
      MutexLock lock(&mu_);
      progress_[i].disposition = QueryDisposition::kInFlight;
      ++stats_.dedup_in_flight;
      stats_.bytes_saved += spec.bytes;
      continue;
    }
    // kAbsent: this query dispatches the load.
    if (session_ != nullptr) {
      SessionBatchRequest request;
      request.unit_name = spec.name;
      request.read_fn = std::move(spec.read_fn);
      request.resources = std::move(spec.resources);
      misses.push_back(std::move(request));
      MutexLock lock(&mu_);
      progress_[i].disposition = QueryDisposition::kBatched;
      ++stats_.batches_issued;
      continue;
    }
    Status added = db_->AddUnit(spec.name, std::move(spec.read_fn),
                                std::move(spec.resources));
    if (added.ok()) {
      MutexLock lock(&mu_);
      progress_[i].disposition = QueryDisposition::kBatched;
      ++stats_.batches_issued;
    } else if (added.code() == StatusCode::kAlreadyExists) {
      // Raced with another planner (or an ingest publish) between the
      // probe and the dispatch: join the winner's load.
      MutexLock lock(&mu_);
      progress_[i].disposition = QueryDisposition::kInFlight;
      ++stats_.dedup_in_flight;
      stats_.bytes_saved += spec.bytes;
    } else {
      return added;
    }
  }

  // Session mode dispatches all misses as one atomically-admitted set:
  // quota is accounted per plan, not per unit.
  if (session_ != nullptr && !misses.empty()) {
    GODIVA_RETURN_IF_ERROR(session_->SubmitBatchSet(std::move(misses)));
  }

  QueryPlanStats snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = stats_;
  }
  db_->ReportQueryPlan(snapshot.dedup_resident + snapshot.dedup_in_flight,
                       snapshot.batches_issued, snapshot.bytes_saved);
  return Status::Ok();
}

void QueryTicket::OnEvent(const Gbo::WatchEvent& event) {
  // Invalidation is not a settle: the unit is about to reload, and the
  // reload's own kReady/kFailed will follow.
  if (event.kind == Gbo::WatchEventKind::kInvalidated) return;
  MutexLock lock(&mu_);
  auto it = index_.find(event.unit_name);
  if (it == index_.end()) return;
  progress_[it->second].settled = true;
  cv_.NotifyAll();
}

Status QueryTicket::WaitOnDb(const std::string& unit_name) {
  if (!has_deadline_) return db_->WaitUnit(unit_name);
  const Duration remaining = deadline_ - Now();
  if (remaining <= Duration::zero()) {
    return DeadlineExceededError(
        StrCat("query deadline passed before unit ", unit_name, " settled"));
  }
  return db_->WaitUnitFor(unit_name, remaining);
}

Status QueryTicket::ConsumeUnit(size_t index) {
  std::string name;
  QueryDisposition disposition;
  bool cancelled;
  Status cancel_reason;
  {
    MutexLock lock(&mu_);
    UnitProgress& progress = progress_[index];
    if (progress.consumed) return progress.result;
    progress.claimed = true;
    name = progress.name;
    disposition = progress.disposition;
    cancelled = cancelled_;
    cancel_reason = cancel_reason_;
  }

  Stopwatch stopwatch;
  Status result;
  bool pinned_now = false;
  if (cancelled) {
    result = cancel_reason;
  } else if (disposition == QueryDisposition::kResident) {
    // Pinned at plan time; nothing to wait for.
    result = Status::Ok();
    // pinned flag already set at submit.
  } else if (session_ != nullptr &&
             disposition == QueryDisposition::kBatched) {
    // Session path: the settle wait goes through the server so a deadline
    // can withdraw a still-queued ticket (releasing its quota slot).
    result = session_->AwaitBatchSettle(
        name, has_deadline_ ? &deadline_ : nullptr);
    if (result.ok()) {
      result = WaitOnDb(name);  // pins on success
      if (result.ok()) {
        pinned_now = true;
        Status adopted = session_->AdoptPlanPin(
            name, stopwatch.ElapsedSeconds() * 1e3);
        if (!adopted.ok()) {
          // The session refused the pin (closed under us): don't leak a
          // db-side pin outside the session's accounting.
          // lint: discard_ok(rolling back an unadoptable pin)
          (void)db_->FinishUnit(name);
          pinned_now = false;
          result = adopted;
        }
      }
    }
  } else {
    // Direct-mode load or a joined in-flight load: wait on the database.
    result = WaitOnDb(name);  // pins on success
    if (result.ok()) {
      pinned_now = true;
      if (session_ != nullptr) {
        Status adopted = session_->AdoptPlanPin(
            name, stopwatch.ElapsedSeconds() * 1e3);
        if (!adopted.ok()) {
          // lint: discard_ok(rolling back an unadoptable pin)
          (void)db_->FinishUnit(name);
          pinned_now = false;
          result = adopted;
        }
      }
    }
  }

  // Push-down: derived-field kernels run here, on the consumer thread,
  // while the remaining units are still loading in the background.
  if (result.ok() && query_.pushdown) {
    std::vector<DerivedResult> produced;
    Status pushed = db_ == nullptr
                        ? InternalError("no database")
                        : query_.pushdown(db_, name, &produced);
    if (pushed.ok()) {
      if (!produced.empty()) {
        db_->ReportPushdownComputations(
            static_cast<int64_t>(produced.size()));
        MutexLock lock(&mu_);
        for (DerivedResult& derived : produced) {
          derived_.push_back(std::move(derived));
        }
      }
    } else {
      // The pin is kept: the caller may still read the raw records, and
      // FinishAll releases it.
      result = pushed;
    }
  }

  {
    MutexLock lock(&mu_);
    UnitProgress& progress = progress_[index];
    progress.consumed = true;
    progress.pinned = progress.pinned || pinned_now;
    progress.result = result;
    cv_.NotifyAll();
  }
  if (query_.on_unit) query_.on_unit(name, result);
  return result;
}

Result<std::string> QueryTicket::WaitAny() {
  size_t pick = 0;
  {
    MutexLock lock(&mu_);
    for (;;) {
      bool all_consumed = true;
      bool found = false;
      bool have_unclaimed = false;
      size_t first_unclaimed = 0;
      for (size_t i = 0; i < progress_.size(); ++i) {
        const UnitProgress& progress = progress_[i];
        if (!progress.consumed) all_consumed = false;
        if (progress.claimed || progress.consumed) continue;
        if (!have_unclaimed) {
          have_unclaimed = true;
          first_unclaimed = i;
        }
        if (progress.settled) {
          pick = i;
          found = true;
          break;
        }
      }
      if (all_consumed) {
        return NotFoundError("every query unit is already consumed");
      }
      if (!found && have_unclaimed &&
          (cancelled_ || !db_->options().background_io)) {
        // Cancelled: consume in plan order so each unit fails fast.
        // Poolless direct mode: nothing settles in the background, so
        // claim in plan order and let WaitUnit run the load inline.
        pick = first_unclaimed;
        found = true;
      }
      if (found) {
        progress_[pick].claimed = true;
        break;
      }
      if (!have_unclaimed) {
        // Everything is claimed by other WaitAny calls but not yet
        // consumed; wait for a consume (or new settle) to re-evaluate.
      }
      if (!has_deadline_) {
        cv_.Wait(&mu_);
        continue;
      }
      if (!cv_.WaitUntil(&mu_, deadline_)) {
        // Deadline passed while waiting. Claim the first unclaimed unit
        // so ConsumeUnit surfaces DEADLINE_EXCEEDED for it (and the
        // session path withdraws its still-queued ticket).
        if (!have_unclaimed) {
          return DeadlineExceededError("query deadline passed");
        }
        pick = first_unclaimed;
        progress_[pick].claimed = true;
        break;
      }
    }
  }

  Status consumed = ConsumeUnit(pick);
  if (consumed.code() == StatusCode::kAborted ||
      consumed.code() == StatusCode::kDeadlineExceeded) {
    // Control-flow failures propagate; per-unit load errors are reported
    // through UnitStatus so the caller keeps draining.
    return consumed;
  }
  MutexLock lock(&mu_);
  return progress_[pick].name;
}

Status QueryTicket::WaitAll() {
  for (;;) {
    Result<std::string> next = WaitAny();
    if (next.ok()) continue;
    if (next.status().code() == StatusCode::kNotFound) break;
    // Deadline or cancellation: fail the rest fast, then keep draining —
    // every remaining unit is consumed with the terminal reason, so the
    // loop strictly advances and terminates.
    // lint: discard_ok(already reporting the trigger)
    (void)WithdrawOutstanding(next.status());
  }
  MutexLock lock(&mu_);
  for (const UnitProgress& progress : progress_) {
    if (!progress.result.ok()) return progress.result;
  }
  return Status::Ok();
}

Status QueryTicket::Cancel() {
  return WithdrawOutstanding(AbortedError("query cancelled"));
}

Status QueryTicket::WithdrawOutstanding(const Status& reason) {
  struct Outstanding {
    std::string name;
    QueryDisposition disposition;
  };
  std::vector<Outstanding> outstanding;
  {
    MutexLock lock(&mu_);
    if (!cancelled_) {
      cancelled_ = true;
      cancel_reason_ = reason;  // first reason wins
    }
    for (const UnitProgress& progress : progress_) {
      if (progress.consumed || progress.claimed) continue;
      if (progress.disposition != QueryDisposition::kBatched) continue;
      outstanding.push_back({progress.name, progress.disposition});
    }
    cv_.NotifyAll();
  }
  for (const Outstanding& unit : outstanding) {
    if (session_ != nullptr) {
      // Withdraw a still-queued ticket, releasing its quota. A granted
      // ticket settles on its own — its unit must NOT be deleted, because
      // the demand-window slot is only released by the settle event.
      // lint: discard_ok(granted tickets settle on their own)
      (void)session_->WithdrawBatch(unit.name);
    } else {
      // Direct mode: DeleteUnit cancels a queued load (or a retry backoff
      // in flight, PR 1 pipeline); a mid-read unit refuses deletion and
      // settles normally.
      // lint: discard_ok(mid-read units settle on their own)
      (void)db_->DeleteUnit(unit.name);
    }
  }
  return Status::Ok();
}

Status QueryTicket::FinishAll() {
  std::vector<std::string> pinned;
  {
    MutexLock lock(&mu_);
    for (UnitProgress& progress : progress_) {
      if (!progress.pinned) continue;
      progress.pinned = false;
      pinned.push_back(progress.name);
    }
  }
  Status first;
  for (const std::string& name : pinned) {
    Status finished = session_ != nullptr ? session_->Finish(name)
                                          : db_->FinishUnit(name);
    if (!finished.ok() && first.ok()) first = finished;
  }
  return first;
}

Status QueryTicket::UnitStatus(const std::string& unit_name) const {
  MutexLock lock(&mu_);
  auto it = index_.find(unit_name);
  if (it == index_.end()) {
    return NotFoundError(StrCat("unit ", unit_name, " is not in this query"));
  }
  const UnitProgress& progress = progress_[it->second];
  if (!progress.consumed) {
    return UnavailableError(StrCat("unit ", unit_name, " not yet consumed"));
  }
  return progress.result;
}

Result<QueryDisposition> QueryTicket::DispositionOf(
    const std::string& unit_name) const {
  MutexLock lock(&mu_);
  auto it = index_.find(unit_name);
  if (it == index_.end()) {
    return NotFoundError(StrCat("unit ", unit_name, " is not in this query"));
  }
  return progress_[it->second].disposition;
}

std::vector<DerivedResult> QueryTicket::TakeDerived() {
  MutexLock lock(&mu_);
  std::vector<DerivedResult> out = std::move(derived_);
  derived_.clear();
  return out;
}

std::vector<std::string> QueryTicket::unit_names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(progress_.size());
  for (const UnitProgress& progress : progress_) {
    names.push_back(progress.name);
  }
  return names;
}

QueryPlanStats QueryTicket::plan() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace godiva
