// Field types — the GODIVA framework's basic schema element (paper §3.1):
// a name, an element data type, and a default buffer size in bytes, which
// may be kUnknownSize when the size is only discovered at read time.
#ifndef GODIVA_CORE_FIELD_TYPE_H_
#define GODIVA_CORE_FIELD_TYPE_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace godiva {

struct FieldTypeDef {
  std::string name;
  DataType type = DataType::kByte;
  // Default data buffer size in bytes, or kUnknownSize. When known, every
  // new record allocates the field's buffer eagerly (paper §3.1).
  int64_t default_size = kUnknownSize;

  bool has_known_size() const { return default_size != kUnknownSize; }
};

}  // namespace godiva

#endif  // GODIVA_CORE_FIELD_TYPE_H_
