// CRC-32 (IEEE 802.3 polynomial, reflected) for dataset integrity
// checking. Table-driven, byte at a time — fast enough for I/O-path
// verification of multi-megabyte buffers.
#ifndef GODIVA_COMMON_CRC32_H_
#define GODIVA_COMMON_CRC32_H_

#include <cstdint>

namespace godiva {

// CRC of `size` bytes at `data`, seeded with `seed` (pass the previous
// result to checksum data in chunks; 0 for a fresh computation).
uint32_t Crc32(const void* data, int64_t size, uint32_t seed = 0);

}  // namespace godiva

#endif  // GODIVA_COMMON_CRC32_H_
