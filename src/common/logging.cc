#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/mutex.h"

namespace godiva {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
// Leaf rank: GODIVA_LOG fires under Gbo::mu_ and the sim locks, so the
// sink mutex must order after everything else.
Mutex g_log_mutex(lock_rank::kLogging, "logging");

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal_logging {

void Emit(LogLevel level, std::string_view file, int line,
          std::string_view message) {
  size_t slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  MutexLock lock(&g_log_mutex);
  std::fprintf(stderr, "[%c %.*s:%d] %.*s\n", LevelLetter(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace internal_logging
}  // namespace godiva
