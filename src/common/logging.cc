#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace godiva {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::mutex g_log_mutex;

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      return '?';
  }
  return '?';
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal_logging {

void Emit(LogLevel level, std::string_view file, int line,
          std::string_view message) {
  size_t slash = file.find_last_of('/');
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%c %.*s:%d] %.*s\n", LevelLetter(level),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace internal_logging
}  // namespace godiva
