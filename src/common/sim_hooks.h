// The seam between the common synchronization primitives and the sim
// layer's discrete-event scheduler (sim/event_scheduler.h). godiva_common
// cannot link against godiva_sim, so Mutex/CondVar/clock code talks to the
// scheduler through this abstract interface: when a scheduler is active
// (installed by DiscreteEventScope), every sleep, contended lock
// acquisition, condition wait, notify, and thread spawn/join in the
// process routes through these hooks and becomes a scheduled event on a
// logical clock. When no scheduler is active (the default, and always
// under TSan), every hook site costs one relaxed atomic load and the
// primitives behave byte-for-byte as before.
//
// Contract for implementations (see EventScheduler for the one that
// exists): at most one hooked thread runs at a time ("single occupancy"),
// so hook bodies never race with each other; Intercepts() returns false on
// scheduler-internal frames so the scheduler's own Mutex/CondVar use does
// not recurse into itself.
#ifndef GODIVA_COMMON_SIM_HOOKS_H_
#define GODIVA_COMMON_SIM_HOOKS_H_

#include <atomic>

#include "common/clock.h"

namespace godiva {

class Mutex;
class CondVar;

namespace detail {

class SimSchedulerHooks {
 public:
  virtual ~SimSchedulerHooks() = default;

  // False while the calling thread is inside the scheduler itself (its
  // internal Mutex/CondVar use must hit the raw primitives, not recurse).
  virtual bool Intercepts() const = 0;

  // The logical clock, anchored to a real steady_clock epoch so existing
  // deadline arithmetic (Now() + timeout) works unchanged.
  virtual TimePoint VirtualNow() const = 0;

  // Parks the calling thread until the virtual clock advances by `d`.
  virtual void DeSleepFor(Duration d) = 0;

  // Acquires `mu`'s raw lock, parking (instead of blocking the OS thread)
  // while another hooked thread holds it. Returns with the raw lock held.
  virtual void DeLock(Mutex* mu) = 0;

  // Called after `mu`'s raw lock was released: makes parked waiters
  // runnable.
  virtual void DeUnlocked(Mutex* mu) = 0;

  // Condition wait: called with `mu`'s raw lock held; releases it, parks
  // until DeCvNotify (or the virtual `deadline`, if non-null), re-acquires
  // the raw lock, and returns true iff woken by a notify.
  virtual bool DeCvWait(CondVar* cv, Mutex* mu, const TimePoint* deadline) = 0;

  // Wakes the longest-parked waiter on `cv` (or all of them).
  virtual void DeCvNotify(CondVar* cv, bool all) = 0;

  // Thread lifecycle (used by godiva::Thread). DeThreadSpawn is called on
  // the spawner and returns an opaque token identifying the child's
  // pre-registered record (deterministic thread ids); the child calls
  // DeThreadAdopt(token) before running its body and DeThreadExit(token)
  // after; DeThreadJoin(token) parks the joiner until the child exits.
  virtual void* DeThreadSpawn() = 0;
  virtual void DeThreadAdopt(void* token) = 0;
  virtual void DeThreadExit(void* token) = 0;
  virtual void DeThreadJoin(void* token) = 0;
};

// The process-wide active scheduler (at most one; installed by
// DiscreteEventScope). Relaxed-load fast path: scheduler activation
// happens-before any hooked thread starts by construction (the scope is
// created before the workload spawns threads).
std::atomic<SimSchedulerHooks*>& ActiveSimSchedulerSlot();

inline SimSchedulerHooks* ActiveSimScheduler() {
  return ActiveSimSchedulerSlot().load(std::memory_order_acquire);
}

// True when the calling thread's blocking operations should be turned into
// scheduler events.
inline bool SimHooksActive() {
  SimSchedulerHooks* hooks = ActiveSimScheduler();
  return hooks != nullptr && hooks->Intercepts();
}

}  // namespace detail
}  // namespace godiva

#endif  // GODIVA_COMMON_SIM_HOOKS_H_
