#include "common/types.h"

namespace godiva {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kByte:
      return "BYTE";
    case DataType::kString:
      return "STRING";
    case DataType::kInt32:
      return "INT32";
    case DataType::kInt64:
      return "INT64";
    case DataType::kFloat32:
      return "FLOAT32";
    case DataType::kFloat64:
      return "FLOAT64";
  }
  return "INVALID";
}

}  // namespace godiva
