// Synchronization helpers: a counting semaphore with a runtime-chosen slot
// count (std::counting_semaphore fixes the max at compile time and cannot
// report occupancy, which SimCpu needs). Built on godiva::Mutex so slot
// accounting is covered by the Clang thread-safety analysis and the
// debug-build lock-rank checker (the internal mutex is a leaf: nothing may
// be acquired while holding it).
#ifndef GODIVA_COMMON_SYNC_H_
#define GODIVA_COMMON_SYNC_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace godiva {

// A counting semaphore: `slots` concurrent holders.
class Semaphore {
 public:
  explicit Semaphore(int slots)
      : mutex_(lock_rank::kSemaphore, "Semaphore::mutex_"),
        slots_(slots),
        available_(slots) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void Acquire() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (available_ <= 0) cv_.Wait(&mutex_);
    --available_;
  }

  // Returns false instead of blocking when no slot is free.
  [[nodiscard]] bool TryAcquire() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (available_ <= 0) return false;
    --available_;
    return true;
  }

  void Release() EXCLUDES(mutex_) { ReleaseN(1); }

  // Returns `n` slots at once, waking enough waiters to consume them.
  // Notifies while still holding the lock: a waiter that observed the
  // increment could otherwise acquire, finish, and destroy the semaphore
  // between our unlock and the notify, leaving the condition variable to
  // be signalled after its storage is gone. Holding the lock across the
  // notify makes release ordering independent of that race.
  void ReleaseN(int n) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    available_ += n;
    if (n == 1) {
      cv_.NotifyOne();
    } else {
      cv_.NotifyAll();
    }
  }

  // Occupancy accessors: free slots right now, and slots handed out.
  int available() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return available_;
  }
  int in_use() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return slots_ - available_;
  }
  int slots() const { return slots_; }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  const int slots_;
  int available_ GUARDED_BY(mutex_);
};

// RAII slot holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* semaphore) : semaphore_(semaphore) {
    semaphore_->Acquire();
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { semaphore_->Release(); }

 private:
  Semaphore* semaphore_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_SYNC_H_
