// Synchronization helpers: a counting semaphore with a runtime-chosen slot
// count (std::counting_semaphore fixes the max at compile time and cannot
// report occupancy, which SimCpu needs). Built on godiva::Mutex so slot
// accounting is covered by the Clang thread-safety analysis and the
// debug-build lock-rank checker (the internal mutex is a leaf: nothing may
// be acquired while holding it).
#ifndef GODIVA_COMMON_SYNC_H_
#define GODIVA_COMMON_SYNC_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace godiva {

// A counting semaphore: `slots` concurrent holders, granted in strict
// FIFO order. Releases hand freed slots directly to the oldest waiting
// ticket (instead of racing the release against fresh acquirers), so slot
// ownership under contention is starvation-free round-robin — the
// interleaving SimCpu documents — and identical between real-thread and
// discrete-event execution.
class Semaphore {
 public:
  explicit Semaphore(int slots)
      : mutex_(lock_rank::kSemaphore, "Semaphore::mutex_"),
        slots_(slots),
        available_(slots) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void Acquire() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (next_ticket_ == granted_ && available_ > 0) {
      --available_;
      return;
    }
    const uint64_t ticket = next_ticket_++;
    while (ticket >= granted_) cv_.Wait(&mutex_);
  }

  // Returns false instead of blocking when no slot is free (a slot handed
  // to a still-waiting ticket is not free).
  [[nodiscard]] bool TryAcquire() EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    if (next_ticket_ != granted_ || available_ <= 0) return false;
    --available_;
    return true;
  }

  void Release() EXCLUDES(mutex_) { ReleaseN(1); }

  // Returns `n` slots at once: each goes to the oldest outstanding ticket
  // if one exists, back to the free pool otherwise.
  // Notifies while still holding the lock: a waiter that observed the
  // grant could otherwise acquire, finish, and destroy the semaphore
  // between our unlock and the notify, leaving the condition variable to
  // be signalled after its storage is gone. Holding the lock across the
  // notify makes release ordering independent of that race. NotifyAll
  // because waiters are keyed by ticket: only the granted ones stay awake.
  void ReleaseN(int n) EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    for (int i = 0; i < n; ++i) {
      if (granted_ < next_ticket_) {
        ++granted_;
      } else {
        ++available_;
      }
    }
    cv_.NotifyAll();
  }

  // Occupancy accessors: free slots right now, and slots handed out
  // (slots assigned to a not-yet-woken ticket count as handed out).
  int available() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return available_;
  }
  int in_use() const EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return slots_ - available_;
  }
  int slots() const { return slots_; }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  const int slots_;
  int available_ GUARDED_BY(mutex_);
  // FIFO ticket line: tickets [granted_, next_ticket_) are still waiting;
  // ReleaseN advances granted_ to hand a slot to the line's head.
  uint64_t next_ticket_ GUARDED_BY(mutex_) = 0;
  uint64_t granted_ GUARDED_BY(mutex_) = 0;
};

// RAII slot holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* semaphore) : semaphore_(semaphore) {
    semaphore_->Acquire();
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { semaphore_->Release(); }

 private:
  Semaphore* semaphore_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_SYNC_H_
