// Synchronization helpers: a counting semaphore with a runtime-chosen slot
// count (std::counting_semaphore fixes the max at compile time and cannot
// report occupancy, which SimCpu needs).
#ifndef GODIVA_COMMON_SYNC_H_
#define GODIVA_COMMON_SYNC_H_

#include <condition_variable>
#include <mutex>

namespace godiva {

// A counting semaphore: `slots` concurrent holders.
class Semaphore {
 public:
  explicit Semaphore(int slots) : available_(slots) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void Acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return available_ > 0; });
    --available_;
  }

  // Returns false instead of blocking when no slot is free.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (available_ <= 0) return false;
    --available_;
    return true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++available_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int available_;
};

// RAII slot holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore* semaphore) : semaphore_(semaphore) {
    semaphore_->Acquire();
  }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() { semaphore_->Release(); }

 private:
  Semaphore* semaphore_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_SYNC_H_
