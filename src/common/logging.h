// Minimal leveled logger. Single global sink (stderr by default); thread
// safe; negligible cost when the level is filtered out.
#ifndef GODIVA_COMMON_LOGGING_H_
#define GODIVA_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace godiva {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; messages below it are dropped. Default kWarning so
// library users see problems but not chatter.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

// Formats and emits one record. `file` is trimmed to its basename.
void Emit(LogLevel level, std::string_view file, int line,
          std::string_view message);

// Stream-collecting helper used by the GODIVA_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace godiva

// Usage: GODIVA_LOG(kInfo) << "prefetched unit " << name;
#define GODIVA_LOG(severity)                                              \
  if (::godiva::LogLevel::severity < ::godiva::GetLogLevel()) {           \
  } else                                                                  \
    ::godiva::internal_logging::LogMessage(::godiva::LogLevel::severity,  \
                                           __FILE__, __LINE__)            \
        .stream()

#endif  // GODIVA_COMMON_LOGGING_H_
