// Deterministic pseudo-random generator (xoshiro256**) for synthetic data
// and property tests: same seed → same sequence on every platform.
#ifndef GODIVA_COMMON_RANDOM_H_
#define GODIVA_COMMON_RANDOM_H_

#include <cstdint>

namespace godiva {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextUint64() % bound; }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBool() { return (NextUint64() & 1) != 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace godiva

#endif  // GODIVA_COMMON_RANDOM_H_
