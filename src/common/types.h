// Scalar data types shared by the GODIVA database (field types) and the
// gsdf scientific file format (dataset element types).
#ifndef GODIVA_COMMON_TYPES_H_
#define GODIVA_COMMON_TYPES_H_

#include <cstdint>
#include <string_view>

namespace godiva {

// Element types a field buffer or gsdf dataset may hold. STRING is a byte
// sequence interpreted as text; BYTE is opaque binary.
enum class DataType : uint8_t {
  kByte = 0,
  kString = 1,
  kInt32 = 2,
  kInt64 = 3,
  kFloat32 = 4,
  kFloat64 = 5,
};

// Size in bytes of one element of `type` (1 for kByte/kString).
constexpr int64_t SizeOf(DataType type) {
  switch (type) {
    case DataType::kByte:
    case DataType::kString:
      return 1;
    case DataType::kInt32:
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
  }
  return 1;
}

std::string_view DataTypeName(DataType type);

// Returns true iff `raw` is a valid DataType encoding.
constexpr bool IsValidDataType(uint8_t raw) {
  return raw <= static_cast<uint8_t>(DataType::kFloat64);
}

// Sentinel for field buffer sizes not known at type-definition time
// (paper §3.1: "If the data buffer size is not known when the field type is
// defined, it can be given the value UNKNOWN").
inline constexpr int64_t kUnknownSize = -1;

}  // namespace godiva

#endif  // GODIVA_COMMON_TYPES_H_
