// Small string formatting helpers used across the codebase.
#ifndef GODIVA_COMMON_STRINGS_H_
#define GODIVA_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace godiva {

// Concatenates the string representations of all arguments (ostream-style).
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return std::string();
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// "1.5 KiB", "384.0 MiB", ...
std::string FormatBytes(int64_t bytes);

// "12.3 ms", "4.56 s", ...
std::string FormatSeconds(double seconds);

// True iff `s` starts with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// True iff `text` matches `glob` ('*' any run, '?' one char). Used by the
// fault plan's path patterns and Gbo watch patterns.
bool GlobMatch(std::string_view glob, std::string_view text);

}  // namespace godiva

#endif  // GODIVA_COMMON_STRINGS_H_
