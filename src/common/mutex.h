// godiva::Mutex / MutexLock / CondVar: thin wrappers over std::mutex and
// std::condition_variable carrying (a) Clang thread-safety capability
// attributes, so a Clang build with -Wthread-safety -Werror statically
// checks which members are touched under which lock, and (b) a debug-build
// lock-rank checker that aborts — with the offending thread's full lock
// set — the moment any thread acquires mutexes out of the global order,
// turning every potential lock-order deadlock into a deterministic crash
// at the acquisition site instead of a timing-dependent hang.
//
// Ranking rule: a thread may acquire a ranked mutex only while every
// ranked mutex it already holds has a strictly *lower* rank. Acquiring the
// same mutex twice (self-deadlock — e.g. a GODIVA read function invoked
// with Gbo::mu_ held) aborts regardless of rank. Default-constructed
// mutexes are unranked: they are tracked (so AssertHeld and re-acquisition
// detection work) but exempt from the ordering rule.
//
// The checker is compiled in when GODIVA_LOCK_RANK_CHECKS is defined (the
// default build; see the GODIVA_DEBUG_CHECKS CMake option) and costs one
// thread-local vector push/pop per acquisition.
#ifndef GODIVA_COMMON_MUTEX_H_
#define GODIVA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace godiva {

// The global lock-order registry, generated from common/lock_rank.def —
// the single source of truth shared by these constants, the runtime
// checker's symbolic abort messages (mutex.cc), and the godiva_lint static
// lock-order analysis. Add a mutex there, not here; DESIGN.md §6 points at
// the table godiva_lint generates from it. Lower ranks are acquired first;
// two mutexes of equal rank must never be held together (the shard range
// encodes its ascending-index order as per-index ranks).
namespace lock_rank {
inline constexpr int kUnranked = -1;  // exempt from ordering checks
#define GODIVA_LOCK_RANK(symbol, rank, owner, doc) \
  inline constexpr int symbol = rank;
#define GODIVA_LOCK_RANK_RANGE(symbol, base, width_symbol, width, owner, \
                               doc)                                      \
  inline constexpr int symbol = base;                                    \
  inline constexpr int width_symbol = width;
#include "common/lock_rank.def"
#undef GODIVA_LOCK_RANK
#undef GODIVA_LOCK_RANK_RANGE

// One registry entry, exposed so the runtime checker (and tests) can name
// ranks symbolically. Ranges cover [rank, rank + width).
struct Entry {
  const char* symbol;
  int rank;
  int width;  // 1 for single mutexes
  const char* owner;
};
inline constexpr Entry kTable[] = {
#define GODIVA_LOCK_RANK(symbol, rank, owner, doc) {#symbol, rank, 1, owner},
#define GODIVA_LOCK_RANK_RANGE(symbol, base, width_symbol, width, owner, \
                               doc)                                      \
  {#symbol, base, width, owner},
#include "common/lock_rank.def"
#undef GODIVA_LOCK_RANK
#undef GODIVA_LOCK_RANK_RANGE
};

// The registry symbol covering `rank` ("kGboShardBase" for any rank in the
// shard range), or "kUnranked" / "unregistered".
const char* SymbolForRank(int rank);
}  // namespace lock_rank

class CAPABILITY("mutex") Mutex {
 public:
  // An unranked mutex: tracked by the checker but exempt from ordering.
  Mutex() : Mutex(lock_rank::kUnranked, "unranked") {}
  // A ranked mutex participating in the global acquisition order.
  explicit Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  // [[nodiscard]]: ignoring the result means not knowing whether the lock
  // is held — always a bug.
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true);

  // Aborts unless the calling thread holds / does not hold this mutex.
  // No-ops when the lock-rank checker is compiled out.
  void AssertHeld() const ASSERT_CAPABILITY(this);
  void AssertNotHeld() const EXCLUDES(this);

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  // The discrete-event scheduler parks threads instead of blocking on
  // raw_, so it needs non-blocking access to the raw lock (sim_hooks.h).
  friend class EventScheduler;

  bool RawTryLock() { return raw_.try_lock(); }
  void RawUnlock() { raw_.unlock(); }

  std::mutex raw_;
  const int rank_;
  const char* const name_;
};

// RAII scoped lock (the std::lock_guard of this world).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

// Condition variable bound to godiva::Mutex. Waits release and re-acquire
// the mutex (updating the lock-rank bookkeeping around the block), and
// both waits return on spurious wakeups — callers loop over an explicit
// predicate, which keeps every guarded read inside a REQUIRES-annotated
// function where the static analysis can see it (lambda predicates are
// opaque to -Wthread-safety).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified (or spuriously woken).
  void Wait(Mutex* mu) REQUIRES(mu);

  // Blocks until notified, spuriously woken, or `deadline`. Returns false
  // iff the deadline passed (the caller re-checks its predicate last).
  [[nodiscard]] bool WaitUntil(Mutex* mu, TimePoint deadline) REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_MUTEX_H_
