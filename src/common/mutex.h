// godiva::Mutex / MutexLock / CondVar: thin wrappers over std::mutex and
// std::condition_variable carrying (a) Clang thread-safety capability
// attributes, so a Clang build with -Wthread-safety -Werror statically
// checks which members are touched under which lock, and (b) a debug-build
// lock-rank checker that aborts — with the offending thread's full lock
// set — the moment any thread acquires mutexes out of the global order,
// turning every potential lock-order deadlock into a deterministic crash
// at the acquisition site instead of a timing-dependent hang.
//
// Ranking rule: a thread may acquire a ranked mutex only while every
// ranked mutex it already holds has a strictly *lower* rank. Acquiring the
// same mutex twice (self-deadlock — e.g. a GODIVA read function invoked
// with Gbo::mu_ held) aborts regardless of rank. Default-constructed
// mutexes are unranked: they are tracked (so AssertHeld and re-acquisition
// detection work) but exempt from the ordering rule.
//
// The checker is compiled in when GODIVA_LOCK_RANK_CHECKS is defined (the
// default build; see the GODIVA_DEBUG_CHECKS CMake option) and costs one
// thread-local vector push/pop per acquisition.
#ifndef GODIVA_COMMON_MUTEX_H_
#define GODIVA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/clock.h"
#include "common/thread_annotations.h"

namespace godiva {

// The global lock-order registry: every long-lived mutex in the system is
// constructed with one of these ranks, and DESIGN.md §6 documents what
// each one guards. Lower ranks are acquired first; two mutexes of equal
// rank must never be held together.
namespace lock_rank {
inline constexpr int kUnranked = -1;  // exempt from ordering checks
// InteractivePrefetcher::mu_ — held across blocking Gbo calls, so it must
// rank below (be acquired before) Gbo::mu_.
inline constexpr int kInteractivePrefetcher = 100;
// workloads::IngestProducer::mu_ — the producer's frontier-lag window;
// drop-oldest holds it across Gbo::DeleteUnit, so it ranks below Gbo::mu_.
inline constexpr int kIngestProducer = 120;
// Gbo::mu_ — the database-global lock (schema, queues, memory budget,
// cold counters). Never held while a user read function runs; the
// re-acquisition check enforces exactly that invariant, because every
// record operation a read function may legally call re-locks it.
inline constexpr int kGboMu = 200;
// Gbo metadata shards: shard i's mutex has rank kGboShardBase + i, so the
// rank checker natively enforces the documented multi-shard acquisition
// order (shard[i] before shard[j] for i < j, and always after Gbo::mu_).
// Shard counts are clamped to kGboMaxShards so the range stays strictly
// below kSimFilesystem.
inline constexpr int kGboShardBase = 210;
inline constexpr int kGboMaxShards = 64;
// Gbo::watch_mu_ — the watch registry. Ranked above the shard range so a
// thread holding mu_ and/or shard locks may snapshot the watcher list, but
// callbacks themselves always run with no Gbo locks held.
inline constexpr int kGboWatch = 280;
// SimEnv::fs_mutex_ — the in-memory filesystem directory.
inline constexpr int kSimFilesystem = 300;
// FaultInjectionEnv::mu_ — the fault plan, consulted before base I/O.
inline constexpr int kFaultPlan = 320;
// SimEnv::disk_mutex_ — the modeled disk head; held across scaled sleeps.
inline constexpr int kSimDisk = 340;
// Semaphore::mutex_ — leaf: nothing is ever acquired under it.
inline constexpr int kSemaphore = 900;
// The global logging sink — leaf, below only nothing: GODIVA_LOG runs
// under Gbo::mu_ and the sim locks.
inline constexpr int kLogging = 1000;
}  // namespace lock_rank

class CAPABILITY("mutex") Mutex {
 public:
  // An unranked mutex: tracked by the checker but exempt from ordering.
  Mutex() : Mutex(lock_rank::kUnranked, "unranked") {}
  // A ranked mutex participating in the global acquisition order.
  explicit Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE();
  void Unlock() RELEASE();
  bool TryLock() TRY_ACQUIRE(true);

  // Aborts unless the calling thread holds / does not hold this mutex.
  // No-ops when the lock-rank checker is compiled out.
  void AssertHeld() const ASSERT_CAPABILITY(this);
  void AssertNotHeld() const EXCLUDES(this);

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex raw_;
  const int rank_;
  const char* const name_;
};

// RAII scoped lock (the std::lock_guard of this world).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

// Condition variable bound to godiva::Mutex. Waits release and re-acquire
// the mutex (updating the lock-rank bookkeeping around the block), and
// both waits return on spurious wakeups — callers loop over an explicit
// predicate, which keeps every guarded read inside a REQUIRES-annotated
// function where the static analysis can see it (lambda predicates are
// opaque to -Wthread-safety).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until notified (or spuriously woken).
  void Wait(Mutex* mu) REQUIRES(mu);

  // Blocks until notified, spuriously woken, or `deadline`. Returns false
  // iff the deadline passed (the caller re-checks its predicate last).
  bool WaitUntil(Mutex* mu, TimePoint deadline) REQUIRES(mu);

  void NotifyOne();
  void NotifyAll();

 private:
  std::condition_variable cv_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_MUTEX_H_
