// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). Applied to godiva::Mutex and every class whose members are
// guarded by one, so a Clang build with -Wthread-safety -Werror proves the
// locking discipline at compile time. Names and semantics follow the Clang
// documentation ("Thread Safety Analysis") and Abseil conventions:
//
//   GUARDED_BY(mu)   data member may only be touched with mu held
//   REQUIRES(mu)     function may only be called with mu held
//   EXCLUDES(mu)     function may only be called with mu NOT held
//   ACQUIRE/RELEASE  function acquires/releases the capability
//   ASSERT_CAPABILITY function asserts (at run time) the capability is held
#ifndef GODIVA_COMMON_THREAD_ANNOTATIONS_H_
#define GODIVA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define GODIVA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define GODIVA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) GODIVA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY GODIVA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) GODIVA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) GODIVA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  GODIVA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
#endif

#endif  // GODIVA_COMMON_THREAD_ANNOTATIONS_H_
