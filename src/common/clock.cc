#include "common/clock.h"

#include <thread>

#include "common/sim_hooks.h"

namespace godiva {

namespace detail {

std::atomic<SimSchedulerHooks*>& ActiveSimSchedulerSlot() {
  static std::atomic<SimSchedulerHooks*> slot{nullptr};
  return slot;
}

}  // namespace detail

TimePoint Now() {
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr) return hooks->VirtualNow();
  return SteadyClock::now();
}

void SleepFor(Duration d) {
  if (d <= Duration::zero()) return;
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    hooks->DeSleepFor(d);
    return;
  }
  std::this_thread::sleep_for(d);
}

}  // namespace godiva
