// Status and Result<T>: the error-handling vocabulary for the GODIVA
// codebase. No exceptions cross API boundaries; fallible operations return
// Status (no payload) or Result<T> (payload or error).
#ifndef GODIVA_COMMON_STATUS_H_
#define GODIVA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace godiva {

// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kDeadlineExceeded,
  kAborted,        // e.g. deadlock detected, shutdown in progress
  kUnavailable,    // transient storage failure; retrying may succeed
  kDataLoss,       // corrupt file contents
  kUnimplemented,
  kIoError,        // underlying storage failure
  kInternal,
};

// Human-readable name for a code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A cheap value type carrying success or (code, message). [[nodiscard]]
// at the class level: every call site that ignores a returned Status is a
// compile error (-Werror) — intentional discards are spelled
// `(void)expr;` and must carry a `// lint: discard_ok(reason)` waiver,
// which godiva_lint check 4 enforces (the compiler cannot see through the
// cast; the linter can).
class [[nodiscard]] Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such unit".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, mirroring absl's.
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status OutOfRangeError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status AbortedError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DataLossError(std::string_view message);
Status UnimplementedError(std::string_view message);
Status IoError(std::string_view message);
Status InternalError(std::string_view message);

// Result<T>: either a value or an error Status. Accessing the value of an
// errored Result is a programming error (asserts in debug builds).
// [[nodiscard]] like Status: a discarded Result silently drops both the
// payload and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if not OK.
#define GODIVA_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::godiva::Status godiva_status_tmp_ = (expr);      \
    if (!godiva_status_tmp_.ok()) return godiva_status_tmp_; \
  } while (false)

// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
// otherwise assigns the value into `lhs` (which may be a declaration).
#define GODIVA_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  GODIVA_ASSIGN_OR_RETURN_IMPL_(                                 \
      GODIVA_STATUS_CONCAT_(godiva_result_, __LINE__), lhs, rexpr)

#define GODIVA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define GODIVA_STATUS_CONCAT_(a, b) GODIVA_STATUS_CONCAT_IMPL_(a, b)
#define GODIVA_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace godiva

#endif  // GODIVA_COMMON_STATUS_H_
