#include "common/mutex.h"

#include "common/sim_hooks.h"

#ifdef GODIVA_LOCK_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>
#endif

namespace godiva {

namespace lock_rank {

const char* SymbolForRank(int rank) {
  if (rank == kUnranked) return "kUnranked";
  for (const Entry& e : kTable) {
    if (rank >= e.rank && rank < e.rank + e.width) return e.symbol;
  }
  return "unregistered";
}

}  // namespace lock_rank

namespace {

#ifdef GODIVA_LOCK_RANK_CHECKS

// The calling thread's current lock set, in acquisition order. Function-
// local thread_local so it works from static initializers and detached
// threads alike.
std::vector<const Mutex*>& HeldSet() {
  static thread_local std::vector<const Mutex*> held;
  return held;
}

// Renders the thread's lock set as "name(rank) -> name(rank)".
void PrintHeldSet(const std::vector<const Mutex*>& held) {
  if (held.empty()) {
    std::fprintf(stderr, "  (no locks held)\n");
    return;
  }
  for (const Mutex* mu : held) {
    std::fprintf(stderr, "  held: %s (rank %d = %s, %p)\n", mu->name(),
                 mu->rank(), lock_rank::SymbolForRank(mu->rank()),
                 static_cast<const void*>(mu));
  }
}

[[noreturn]] void Fail(const char* what, const Mutex* mu) {
  std::fprintf(stderr,
               "godiva: %s: mutex %s (rank %d = %s, %p); this thread's lock "
               "set in acquisition order:\n",
               what, mu->name(), mu->rank(),
               lock_rank::SymbolForRank(mu->rank()), static_cast<const void*>(mu));
  PrintHeldSet(HeldSet());
  std::abort();
}

// Runs the ordering check for an acquisition of `mu`, then records it.
// Called before blocking on the raw mutex so violations abort instead of
// deadlocking.
void RankOnAcquire(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldSet();
  for (const Mutex* h : held) {
    if (h == mu) {
      Fail("lock-rank violation: mutex already held by this thread "
           "(self-deadlock)",
           mu);
    }
  }
  if (mu->rank() != lock_rank::kUnranked) {
    for (const Mutex* h : held) {
      if (h->rank() != lock_rank::kUnranked && h->rank() >= mu->rank()) {
        Fail("lock-rank violation: acquisition out of global order", mu);
      }
    }
  }
  held.push_back(mu);
}

void RankOnRelease(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldSet();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  Fail("lock-rank bookkeeping: releasing a mutex this thread does not hold",
       mu);
}

bool IsHeld(const Mutex* mu) {
  for (const Mutex* h : HeldSet()) {
    if (h == mu) return true;
  }
  return false;
}

#else  // !GODIVA_LOCK_RANK_CHECKS

inline void RankOnAcquire(const Mutex*) {}
inline void RankOnRelease(const Mutex*) {}

#endif  // GODIVA_LOCK_RANK_CHECKS

}  // namespace

void Mutex::Lock() {
  // Rank bookkeeping runs before blocking (raw or parked) so ordering
  // violations abort instead of deadlocking.
  RankOnAcquire(this);
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    hooks->DeLock(this);
    return;
  }
  raw_.lock();
}

void Mutex::Unlock() {
  RankOnRelease(this);
  raw_.unlock();
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) hooks->DeUnlocked(this);
}

bool Mutex::TryLock() {
  // Never blocks, so no scheduler involvement: under single occupancy the
  // outcome is deterministic either way.
  if (!raw_.try_lock()) return false;
  RankOnAcquire(this);
  return true;
}

#ifdef GODIVA_LOCK_RANK_CHECKS

void Mutex::AssertHeld() const {
  if (!IsHeld(this)) {
    Fail("AssertHeld failed: mutex not held by this thread", this);
  }
}

void Mutex::AssertNotHeld() const {
  if (IsHeld(this)) {
    Fail("AssertNotHeld failed: mutex held by this thread", this);
  }
}

#else  // !GODIVA_LOCK_RANK_CHECKS

void Mutex::AssertHeld() const {}

void Mutex::AssertNotHeld() const {}

#endif  // GODIVA_LOCK_RANK_CHECKS

void CondVar::Wait(Mutex* mu) {
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    RankOnRelease(mu);
    (void)hooks->DeCvWait(this, mu, nullptr);
    RankOnAcquire(mu);
    return;
  }
  RankOnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  RankOnAcquire(mu);
}

bool CondVar::WaitUntil(Mutex* mu, TimePoint deadline) {
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    RankOnRelease(mu);
    bool notified = hooks->DeCvWait(this, mu, &deadline);
    RankOnAcquire(mu);
    return notified;
  }
  RankOnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  RankOnAcquire(mu);
  return status == std::cv_status::no_timeout;
}

void CondVar::NotifyOne() {
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    hooks->DeCvNotify(this, /*all=*/false);
    return;
  }
  cv_.notify_one();
}

void CondVar::NotifyAll() {
  detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
  if (hooks != nullptr && hooks->Intercepts()) {
    hooks->DeCvNotify(this, /*all=*/true);
    return;
  }
  cv_.notify_all();
}

}  // namespace godiva
