#include "common/mutex.h"

#ifdef GODIVA_LOCK_RANK_CHECKS
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>
#endif

namespace godiva {

namespace lock_rank {

const char* SymbolForRank(int rank) {
  if (rank == kUnranked) return "kUnranked";
  for (const Entry& e : kTable) {
    if (rank >= e.rank && rank < e.rank + e.width) return e.symbol;
  }
  return "unregistered";
}

}  // namespace lock_rank

#ifdef GODIVA_LOCK_RANK_CHECKS

namespace {

// The calling thread's current lock set, in acquisition order. Function-
// local thread_local so it works from static initializers and detached
// threads alike.
std::vector<const Mutex*>& HeldSet() {
  static thread_local std::vector<const Mutex*> held;
  return held;
}

// Renders the thread's lock set as "name(rank) -> name(rank)".
void PrintHeldSet(const std::vector<const Mutex*>& held) {
  if (held.empty()) {
    std::fprintf(stderr, "  (no locks held)\n");
    return;
  }
  for (const Mutex* mu : held) {
    std::fprintf(stderr, "  held: %s (rank %d = %s, %p)\n", mu->name(),
                 mu->rank(), lock_rank::SymbolForRank(mu->rank()),
                 static_cast<const void*>(mu));
  }
}

[[noreturn]] void Fail(const char* what, const Mutex* mu) {
  std::fprintf(stderr,
               "godiva: %s: mutex %s (rank %d = %s, %p); this thread's lock "
               "set in acquisition order:\n",
               what, mu->name(), mu->rank(),
               lock_rank::SymbolForRank(mu->rank()), static_cast<const void*>(mu));
  PrintHeldSet(HeldSet());
  std::abort();
}

// Runs the ordering check for an acquisition of `mu`, then records it.
// Called before blocking on the raw mutex so violations abort instead of
// deadlocking.
void OnAcquire(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldSet();
  for (const Mutex* h : held) {
    if (h == mu) {
      Fail("lock-rank violation: mutex already held by this thread "
           "(self-deadlock)",
           mu);
    }
  }
  if (mu->rank() != lock_rank::kUnranked) {
    for (const Mutex* h : held) {
      if (h->rank() != lock_rank::kUnranked && h->rank() >= mu->rank()) {
        Fail("lock-rank violation: acquisition out of global order", mu);
      }
    }
  }
  held.push_back(mu);
}

void OnRelease(const Mutex* mu) {
  std::vector<const Mutex*>& held = HeldSet();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == mu) {
      held.erase(std::next(it).base());
      return;
    }
  }
  Fail("lock-rank bookkeeping: releasing a mutex this thread does not hold",
       mu);
}

bool IsHeld(const Mutex* mu) {
  for (const Mutex* h : HeldSet()) {
    if (h == mu) return true;
  }
  return false;
}

}  // namespace

void Mutex::Lock() {
  OnAcquire(this);
  raw_.lock();
}

void Mutex::Unlock() {
  OnRelease(this);
  raw_.unlock();
}

bool Mutex::TryLock() {
  if (!raw_.try_lock()) return false;
  // Record (and order-check) only successful acquisitions; a failed
  // try_lock cannot deadlock and leaves the lock set untouched.
  OnAcquire(this);
  return true;
}

void Mutex::AssertHeld() const {
  if (!IsHeld(this)) {
    Fail("AssertHeld failed: mutex not held by this thread", this);
  }
}

void Mutex::AssertNotHeld() const {
  if (IsHeld(this)) {
    Fail("AssertNotHeld failed: mutex held by this thread", this);
  }
}

void CondVar::Wait(Mutex* mu) {
  OnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
  OnAcquire(mu);
}

bool CondVar::WaitUntil(Mutex* mu, TimePoint deadline) {
  OnRelease(mu);
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  OnAcquire(mu);
  return status == std::cv_status::no_timeout;
}

#else  // !GODIVA_LOCK_RANK_CHECKS

void Mutex::Lock() { raw_.lock(); }

void Mutex::Unlock() { raw_.unlock(); }

bool Mutex::TryLock() { return raw_.try_lock(); }

void Mutex::AssertHeld() const {}

void Mutex::AssertNotHeld() const {}

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();
}

bool CondVar::WaitUntil(Mutex* mu, TimePoint deadline) {
  std::unique_lock<std::mutex> lock(mu->raw_, std::adopt_lock);
  std::cv_status status = cv_.wait_until(lock, deadline);
  lock.release();
  return status == std::cv_status::no_timeout;
}

#endif  // GODIVA_LOCK_RANK_CHECKS

void CondVar::NotifyOne() { cv_.notify_one(); }

void CondVar::NotifyAll() { cv_.notify_all(); }

}  // namespace godiva
