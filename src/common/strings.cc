#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace godiva {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), format, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string FormatBytes(int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%lld B", static_cast<long long>(bytes));
  return StrFormat("%.1f %s", value, units[unit]);
}

std::string FormatSeconds(double seconds) {
  if (seconds < 1e-3) return StrFormat("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrFormat("%.2f ms", seconds * 1e3);
  return StrFormat("%.3f s", seconds);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool GlobMatch(std::string_view glob, std::string_view text) {
  // Iterative wildcard match with backtracking over the last '*'.
  size_t g = 0, t = 0;
  size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == text[t])) {
      ++g;
      ++t;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

}  // namespace godiva
