// godiva::Thread: std::thread plus discrete-event scheduler integration
// (sim_hooks.h). When a scheduler is active, the spawner pre-registers the
// child before the OS thread exists — thread ids (and therefore event
// traces) are assigned in program order, not OS wake order — and join()
// parks the joiner on the child's exit event instead of blocking the OS
// thread (which would wedge the cooperative scheduler: the permit holder
// must never block outside the scheduler's knowledge). With no scheduler
// active this is a zero-cost veneer over std::thread.
//
// All thread spawns in src/ that can run under a DiscreteEventScope use
// this wrapper; raw std::thread remains fine for code that never runs in
// discrete-event mode.
#ifndef GODIVA_COMMON_THREAD_H_
#define GODIVA_COMMON_THREAD_H_

#include <functional>
#include <thread>
#include <utility>

#include "common/sim_hooks.h"

namespace godiva {

class Thread {
 public:
  Thread() = default;

  template <typename Fn, typename... Args>
    requires(sizeof...(Args) > 0)
  explicit Thread(Fn raw_fn, Args&&... args)
      : Thread(std::bind_front(std::move(raw_fn),
                               std::forward<Args>(args)...)) {}

  template <typename Fn>
  explicit Thread(Fn fn) {
    detail::SimSchedulerHooks* hooks = detail::ActiveSimScheduler();
    if (hooks != nullptr && hooks->Intercepts()) {
      token_ = hooks->DeThreadSpawn();
      hooks_ = hooks;
    }
    thread_ = std::thread([fn = std::move(fn), token = token_,
                           hooks = hooks_]() mutable {
      // Adopt before running the body so the child's very first
      // instrumented operation already carries its pre-assigned id, and
      // so the child waits for the scheduler's permit before touching
      // shared state. (The scheduler-still-active check covers a child
      // racing a scope teardown that chose not to join it.)
      const bool adopted =
          token != nullptr && detail::ActiveSimScheduler() == hooks;
      if (adopted) hooks->DeThreadAdopt(token);
      fn();
      if (adopted) hooks->DeThreadExit(token);
    });
  }

  Thread(Thread&& other) noexcept
      : thread_(std::move(other.thread_)),
        token_(std::exchange(other.token_, nullptr)),
        hooks_(std::exchange(other.hooks_, nullptr)) {}

  Thread& operator=(Thread&& other) noexcept {
    thread_ = std::move(other.thread_);
    token_ = std::exchange(other.token_, nullptr);
    hooks_ = std::exchange(other.hooks_, nullptr);
    return *this;
  }

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  bool joinable() const { return thread_.joinable(); }

  void join() {
    // Park until the child's exit event, then reap the (now finished) OS
    // thread; the raw join cannot block meaningfully after DeThreadJoin
    // returns... except for the final microseconds between the child's
    // DeThreadExit and its OS-level termination, which is fine: the child
    // runs no instrumented code in that window.
    if (token_ != nullptr && detail::ActiveSimScheduler() == hooks_) {
      hooks_->DeThreadJoin(token_);
    }
    token_ = nullptr;
    hooks_ = nullptr;
    thread_.join();
  }

 private:
  std::thread thread_;
  void* token_ = nullptr;
  detail::SimSchedulerHooks* hooks_ = nullptr;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_THREAD_H_
