#include "common/status.h"

#include <string>
#include <string_view>

namespace godiva {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}
Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(StatusCode::kAlreadyExists, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}
Status OutOfRangeError(std::string_view message) {
  return Status(StatusCode::kOutOfRange, std::string(message));
}
Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}
Status DeadlineExceededError(std::string_view message) {
  return Status(StatusCode::kDeadlineExceeded, std::string(message));
}
Status AbortedError(std::string_view message) {
  return Status(StatusCode::kAborted, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(StatusCode::kUnavailable, std::string(message));
}
Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(StatusCode::kUnimplemented, std::string(message));
}
Status IoError(std::string_view message) {
  return Status(StatusCode::kIoError, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}

}  // namespace godiva
