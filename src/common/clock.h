// Wall-clock helpers: a steady-clock stopwatch and an accumulating timer
// used for the paper's "visible I/O time" / "computation time" accounting.
#ifndef GODIVA_COMMON_CLOCK_H_
#define GODIVA_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace godiva {

using SteadyClock = std::chrono::steady_clock;
using Duration = SteadyClock::duration;
using TimePoint = SteadyClock::time_point;

inline double ToSeconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

inline Duration FromSeconds(double seconds) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(seconds));
}

// Measures elapsed wall time since construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  void Restart() { start_ = SteadyClock::now(); }
  Duration Elapsed() const { return SteadyClock::now() - start_; }
  double ElapsedSeconds() const { return ToSeconds(Elapsed()); }

 private:
  TimePoint start_;
};

// Thread-safe accumulator of durations (nanosecond granularity). Used by
// GODIVA stats where several threads contribute to one total.
class TimeAccumulator {
 public:
  TimeAccumulator() : nanos_(0) {}
  TimeAccumulator(const TimeAccumulator&) = delete;
  TimeAccumulator& operator=(const TimeAccumulator&) = delete;

  void Add(Duration d) {
    nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
        std::memory_order_relaxed);
  }

  Duration Total() const {
    return std::chrono::duration_cast<Duration>(
        std::chrono::nanoseconds(nanos_.load(std::memory_order_relaxed)));
  }

  double TotalSeconds() const { return ToSeconds(Total()); }

  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> nanos_;
};

// RAII helper: adds the scope's elapsed time to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* accumulator)
      : accumulator_(accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_->Add(stopwatch_.Elapsed()); }

 private:
  TimeAccumulator* accumulator_;
  Stopwatch stopwatch_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_CLOCK_H_
