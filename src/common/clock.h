// Wall-clock helpers: a steady-clock stopwatch and an accumulating timer
// used for the paper's "visible I/O time" / "computation time" accounting.
//
// All timing in src/ goes through godiva::Now() / godiva::SleepFor()
// rather than SteadyClock::now() / std::this_thread::sleep_for directly:
// when a discrete-event scheduler is active (sim/event_scheduler.h) they
// read and advance the logical clock, so the same measurement code yields
// virtual time in discrete-event mode and real time otherwise.
#ifndef GODIVA_COMMON_CLOCK_H_
#define GODIVA_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace godiva {

using SteadyClock = std::chrono::steady_clock;
using Duration = SteadyClock::duration;
using TimePoint = SteadyClock::time_point;

inline double ToSeconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

inline Duration FromSeconds(double seconds) {
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(seconds));
}

// The current time: the virtual clock when a discrete-event scheduler is
// active, SteadyClock::now() otherwise. Deadlines built as Now() + timeout
// are comparable with either source (the virtual clock is anchored to a
// real steady_clock epoch).
TimePoint Now();

// Sleeps for `d`: a parked scheduler event in discrete-event mode, a real
// std::this_thread::sleep_for otherwise.
void SleepFor(Duration d);

// Measures elapsed time since construction or the last Restart(), on the
// same clock Now() reads (virtual in discrete-event mode).
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }
  Duration Elapsed() const { return Now() - start_; }
  double ElapsedSeconds() const { return ToSeconds(Elapsed()); }

 private:
  TimePoint start_;
};

// Thread-safe accumulator of durations (nanosecond granularity). Used by
// GODIVA stats where several threads contribute to one total.
class TimeAccumulator {
 public:
  TimeAccumulator() : nanos_(0) {}
  TimeAccumulator(const TimeAccumulator&) = delete;
  TimeAccumulator& operator=(const TimeAccumulator&) = delete;

  void Add(Duration d) {
    nanos_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count(),
        std::memory_order_relaxed);
  }

  Duration Total() const {
    return std::chrono::duration_cast<Duration>(
        std::chrono::nanoseconds(nanos_.load(std::memory_order_relaxed)));
  }

  double TotalSeconds() const { return ToSeconds(Total()); }

  void Reset() { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> nanos_;
};

// RAII helper: adds the scope's elapsed time to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator* accumulator)
      : accumulator_(accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_->Add(stopwatch_.Elapsed()); }

 private:
  TimeAccumulator* accumulator_;
  Stopwatch stopwatch_;
};

}  // namespace godiva

#endif  // GODIVA_COMMON_CLOCK_H_
