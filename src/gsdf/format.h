// On-disk layout of the GODIVA Scientific Data Format (gsdf) — the
// self-describing container this repo uses in place of HDF4 (see
// DESIGN.md §1 and §7). Layout (all integers little-endian):
//
//   header:   "GSDF" | u32 version | u64 reserved
//   payloads: raw dataset bytes, in AddDataset order
//   directory: per dataset:
//       u32 name_len | name | u8 dtype | u64 offset | u64 nbytes |
//       u32 nattrs | nattrs × (u32 klen | key | u32 vlen | value)
//   file attrs: u32 nattrs | nattrs × (u32 klen | key | u32 vlen | value)
//   footer v1: u64 dir_offset | u64 dataset_count | "FDSG"
//   footer v2: u64 dir_offset | u64 dataset_count | u32 tail_crc | "FDSG"
//
// v2's tail_crc is a CRC-32 over [dir_offset, file_size - 8): the whole
// directory, the file attributes, and the footer's own dir_offset and
// dataset_count fields — everything the reader trusts to locate payloads.
// Readers accept both versions; writers emit v2 unless asked for v1.
// Files are written to `<path>.tmp` and renamed into place on Finish(), so
// a file that exists at its final path is structurally complete (§7).
#ifndef GODIVA_GSDF_FORMAT_H_
#define GODIVA_GSDF_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace godiva::gsdf {

inline constexpr char kMagic[4] = {'G', 'S', 'D', 'F'};
inline constexpr char kFooterMagic[4] = {'F', 'D', 'S', 'G'};
inline constexpr uint32_t kVersionV1 = 1;   // no tail CRC
inline constexpr uint32_t kVersion = 2;     // current: CRC-protected tail
inline constexpr int64_t kHeaderSize = 4 + 4 + 8;
inline constexpr int64_t kFooterSizeV1 = 8 + 8 + 4;
inline constexpr int64_t kFooterSize = 8 + 8 + 4 + 4;

inline constexpr bool IsSupportedVersion(uint32_t version) {
  return version == kVersionV1 || version == kVersion;
}

inline constexpr int64_t FooterSizeForVersion(uint32_t version) {
  return version == kVersionV1 ? kFooterSizeV1 : kFooterSize;
}

// Little-endian scalar encode/decode into byte buffers. The hosts we target
// are little-endian; these helpers centralize the assumption.
inline void EncodeU32(uint32_t value, std::string* out) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out->append(buf, 4);
}

inline void EncodeU64(uint64_t value, std::string* out) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out->append(buf, 8);
}

inline uint32_t DecodeU32(const uint8_t* p) {
  uint32_t value;
  std::memcpy(&value, p, 4);
  return value;
}

inline uint64_t DecodeU64(const uint8_t* p) {
  uint64_t value;
  std::memcpy(&value, p, 8);
  return value;
}

}  // namespace godiva::gsdf

#endif  // GODIVA_GSDF_FORMAT_H_
