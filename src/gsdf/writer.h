// Sequential gsdf file writer.
#ifndef GODIVA_GSDF_WRITER_H_
#define GODIVA_GSDF_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/env.h"

namespace godiva::gsdf {

using AttributeList = std::vector<std::pair<std::string, std::string>>;

// Reserved attribute key holding the dataset payload's CRC-32 (8 hex
// digits); written by default, verified via Reader::VerifyChecksum.
inline constexpr char kChecksumAttribute[] = "__crc32";

// Writes datasets in call order; Finish() emits directory + footer, syncs,
// and atomically renames the temp file into place. Not thread safe.
class Writer {
 public:
  struct Options {
    // Attach a CRC-32 of each payload as the __crc32 dataset attribute.
    bool checksums = true;
    // Format version to emit: kVersion (v2, CRC-protected tail) or
    // kVersionV1 for compatibility testing with pre-CRC readers.
    uint32_t version = 0;  // 0 = current (format.h kVersion)
    // Write to `<path>.tmp` and rename on Finish() so readers never see a
    // partial file at the final path. Off: write `path` directly (the
    // pre-crash-consistency behavior; the abort path still deletes it).
    bool atomic = true;
  };

  // Opens the write target on `env` and writes the header. With
  // options.atomic the target is `<path>.tmp` until Finish() renames it.
  static Result<std::unique_ptr<Writer>> Create(Env* env,
                                                const std::string& path,
                                                Options options);
  static Result<std::unique_ptr<Writer>> Create(Env* env,
                                                const std::string& path) {
    return Create(env, path, Options{});
  }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  // Abandoning a writer without Finish() deletes the partial file.
  ~Writer();

  // The path being appended to right now (`<path>.tmp` under the atomic
  // protocol); exposed so fault plans can target the in-flight file.
  static std::string TempPath(const std::string& path) {
    return path + ".tmp";
  }

  // Appends one named, typed dataset. `nbytes` must be a multiple of
  // SizeOf(type). Dataset names must be unique within the file.
  Status AddDataset(const std::string& name, DataType type, const void* data,
                    int64_t nbytes, AttributeList attributes = {});

  // Sets a file-level attribute (overwrites an existing key).
  void SetFileAttribute(const std::string& key, const std::string& value);

  // Writes directory and footer, syncs, closes, and (atomic mode) renames
  // the temp file to the final path. Must be the last call. On failure the
  // in-progress file is deleted; nothing appears at the final path.
  Status Finish();

 private:
  struct DatasetEntry {
    std::string name;
    DataType type;
    int64_t offset;
    int64_t nbytes;
    AttributeList attributes;
  };

  Writer(Env* env, std::unique_ptr<WritableFile> file, std::string final_path,
         std::string write_path, Options options);

  Status FinishInternal();
  // Closes and best-effort deletes the in-progress file.
  void Abandon();

  Env* env_;
  std::unique_ptr<WritableFile> file_;
  std::string final_path_;
  std::string write_path_;  // == final_path_ when !options_.atomic
  Options options_;
  int64_t write_offset_ = 0;
  std::vector<DatasetEntry> datasets_;
  AttributeList file_attributes_;
  bool finished_ = false;
};

}  // namespace godiva::gsdf

#endif  // GODIVA_GSDF_WRITER_H_
