// Sequential gsdf file writer.
#ifndef GODIVA_GSDF_WRITER_H_
#define GODIVA_GSDF_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/env.h"

namespace godiva::gsdf {

using AttributeList = std::vector<std::pair<std::string, std::string>>;

// Reserved attribute key holding the dataset payload's CRC-32 (8 hex
// digits); written by default, verified via Reader::VerifyChecksum.
inline constexpr char kChecksumAttribute[] = "__crc32";

// Writes datasets in call order; Finish() emits directory + footer. Not
// thread safe.
class Writer {
 public:
  struct Options {
    // Attach a CRC-32 of each payload as the __crc32 dataset attribute.
    bool checksums = true;
  };

  // Creates/truncates `path` on `env` and writes the header.
  static Result<std::unique_ptr<Writer>> Create(Env* env,
                                                const std::string& path,
                                                Options options);
  static Result<std::unique_ptr<Writer>> Create(Env* env,
                                                const std::string& path) {
    return Create(env, path, Options{});
  }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  ~Writer() = default;

  // Appends one named, typed dataset. `nbytes` must be a multiple of
  // SizeOf(type). Dataset names must be unique within the file.
  Status AddDataset(const std::string& name, DataType type, const void* data,
                    int64_t nbytes, AttributeList attributes = {});

  // Sets a file-level attribute (overwrites an existing key).
  void SetFileAttribute(const std::string& key, const std::string& value);

  // Writes directory and footer and closes the file. Must be the last call.
  Status Finish();

 private:
  struct DatasetEntry {
    std::string name;
    DataType type;
    int64_t offset;
    int64_t nbytes;
    AttributeList attributes;
  };

  Writer(std::unique_ptr<WritableFile> file, Options options);

  std::unique_ptr<WritableFile> file_;
  Options options_;
  int64_t write_offset_ = 0;
  std::vector<DatasetEntry> datasets_;
  AttributeList file_attributes_;
  bool finished_ = false;
};

}  // namespace godiva::gsdf

#endif  // GODIVA_GSDF_WRITER_H_
