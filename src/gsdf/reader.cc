#include "gsdf/reader.h"

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"
#include "gsdf/format.h"

namespace godiva::gsdf {
namespace {

// Bounds-checked cursor over a byte buffer.
class Cursor {
 public:
  Cursor(const uint8_t* data, int64_t size) : data_(data), size_(size) {}

  Result<uint32_t> ReadU32() {
    GODIVA_RETURN_IF_ERROR(Need(4));
    uint32_t value = DecodeU32(data_ + pos_);
    pos_ += 4;
    return value;
  }

  Result<uint64_t> ReadU64() {
    GODIVA_RETURN_IF_ERROR(Need(8));
    uint64_t value = DecodeU64(data_ + pos_);
    pos_ += 8;
    return value;
  }

  Result<uint8_t> ReadU8() {
    GODIVA_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }

  Result<std::string> ReadString() {
    GODIVA_ASSIGN_OR_RETURN(uint32_t length, ReadU32());
    GODIVA_RETURN_IF_ERROR(Need(length));
    std::string out(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return out;
  }

  int64_t remaining() const { return size_ - pos_; }

  Result<AttributeList> ReadAttributes() {
    GODIVA_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
    // Each attribute needs at least two length prefixes (8 bytes); a count
    // beyond that is corruption — reject before reserving memory for it.
    if (static_cast<int64_t>(count) > remaining() / 8) {
      return DataLossError("gsdf attribute count exceeds directory size");
    }
    AttributeList attrs;
    attrs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      GODIVA_ASSIGN_OR_RETURN(std::string key, ReadString());
      GODIVA_ASSIGN_OR_RETURN(std::string value, ReadString());
      attrs.emplace_back(std::move(key), std::move(value));
    }
    return attrs;
  }

 private:
  Status Need(int64_t n) {
    if (pos_ + n > size_) {
      return DataLossError("gsdf directory truncated");
    }
    return Status::Ok();
  }

  const uint8_t* data_;
  int64_t size_;
  int64_t pos_ = 0;
};

}  // namespace

const std::string* DatasetInfo::FindAttribute(const std::string& key) const {
  for (const auto& [attr_key, attr_value] : attributes) {
    if (attr_key == key) return &attr_value;
  }
  return nullptr;
}

Reader::Reader(Env* env, std::string path)
    : path_(std::move(path)), env_(env) {}

Result<std::unique_ptr<Reader>> Reader::Open(Env* env,
                                             const std::string& path) {
  auto reader = std::unique_ptr<Reader>(new Reader(env, path));
  GODIVA_RETURN_IF_ERROR(reader->Load());
  return reader;
}

Status Reader::Load() {
  GODIVA_ASSIGN_OR_RETURN(file_, env_->NewRandomAccessFile(path_));
  int64_t file_size = file_->Size();
  if (file_size < kHeaderSize + kFooterSize) {
    return DataLossError(StrCat(path_, ": too small to be a gsdf file"));
  }

  uint8_t header[kHeaderSize];
  GODIVA_RETURN_IF_ERROR(file_->Read(0, kHeaderSize, header));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(StrCat(path_, ": bad gsdf magic"));
  }
  uint32_t version = DecodeU32(header + 4);
  if (version != kVersion) {
    return DataLossError(
        StrFormat("%s: unsupported gsdf version %u", path_.c_str(), version));
  }

  uint8_t footer[kFooterSize];
  GODIVA_RETURN_IF_ERROR(
      file_->Read(file_size - kFooterSize, kFooterSize, footer));
  if (std::memcmp(footer + 16, kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return DataLossError(StrCat(path_, ": bad gsdf footer magic"));
  }
  int64_t dir_offset = static_cast<int64_t>(DecodeU64(footer));
  int64_t dataset_count = static_cast<int64_t>(DecodeU64(footer + 8));
  if (dir_offset < kHeaderSize || dir_offset > file_size - kFooterSize) {
    return DataLossError(StrCat(path_, ": directory offset out of range"));
  }

  int64_t dir_size = file_size - kFooterSize - dir_offset;
  std::vector<uint8_t> dir_bytes(static_cast<size_t>(dir_size));
  GODIVA_RETURN_IF_ERROR(file_->Read(dir_offset, dir_size, dir_bytes.data()));

  // A directory entry is at least name-length + type + offset + size +
  // attribute-count = 25 bytes; a larger claimed count is corruption.
  if (dataset_count < 0 || dataset_count > dir_size / 25) {
    return DataLossError(
        StrCat(path_, ": dataset count exceeds directory size"));
  }

  Cursor cursor(dir_bytes.data(), dir_size);
  datasets_.reserve(static_cast<size_t>(dataset_count));
  for (int64_t i = 0; i < dataset_count; ++i) {
    DatasetInfo info;
    GODIVA_ASSIGN_OR_RETURN(info.name, cursor.ReadString());
    GODIVA_ASSIGN_OR_RETURN(uint8_t raw_type, cursor.ReadU8());
    if (!IsValidDataType(raw_type)) {
      return DataLossError(
          StrFormat("%s: dataset %s has invalid type %u", path_.c_str(),
                    info.name.c_str(), raw_type));
    }
    info.type = static_cast<DataType>(raw_type);
    GODIVA_ASSIGN_OR_RETURN(uint64_t offset, cursor.ReadU64());
    GODIVA_ASSIGN_OR_RETURN(uint64_t nbytes, cursor.ReadU64());
    info.offset = static_cast<int64_t>(offset);
    info.nbytes = static_cast<int64_t>(nbytes);
    if (info.nbytes < 0 || info.offset < kHeaderSize ||
        info.offset + info.nbytes > dir_offset) {
      return DataLossError(StrCat(path_, ": dataset ", info.name,
                                  " payload out of range"));
    }
    GODIVA_ASSIGN_OR_RETURN(info.attributes, cursor.ReadAttributes());
    dataset_index_.emplace(info.name, datasets_.size());
    datasets_.push_back(std::move(info));
  }
  GODIVA_ASSIGN_OR_RETURN(file_attributes_, cursor.ReadAttributes());
  return Status::Ok();
}

Result<const DatasetInfo*> Reader::Find(const std::string& name) const {
  auto it = dataset_index_.find(name);
  if (it == dataset_index_.end()) {
    return NotFoundError(StrCat(path_, ": no dataset named ", name));
  }
  return &datasets_[it->second];
}

Status Reader::Read(const std::string& name, void* out,
                    int64_t out_bytes) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  if (out_bytes < info->nbytes) {
    return InvalidArgumentError(
        StrFormat("buffer of %lld bytes too small for dataset %s (%lld)",
                  static_cast<long long>(out_bytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  return file_->Read(info->offset, info->nbytes, out);
}

Status Reader::ReadVerified(const std::string& name, void* out,
                            int64_t out_bytes) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  const std::string* stored = info->FindAttribute(kChecksumAttribute);
  if (stored == nullptr) {
    return FailedPreconditionError(
        StrCat(path_, ": dataset ", name, " has no checksum"));
  }
  if (out_bytes < info->nbytes) {
    return InvalidArgumentError(
        StrFormat("buffer of %lld bytes too small for dataset %s (%lld)",
                  static_cast<long long>(out_bytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  GODIVA_RETURN_IF_ERROR(file_->Read(info->offset, info->nbytes, out));
  std::string actual = StrFormat("%08x", Crc32(out, info->nbytes));
  if (actual != *stored) {
    return DataLossError(StrFormat(
        "%s: dataset %s checksum mismatch (stored %s, computed %s)",
        path_.c_str(), name.c_str(), stored->c_str(), actual.c_str()));
  }
  return Status::Ok();
}

Status Reader::VerifyChecksum(const std::string& name) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  const std::string* stored = info->FindAttribute(kChecksumAttribute);
  if (stored == nullptr) {
    return FailedPreconditionError(
        StrCat(path_, ": dataset ", name, " has no checksum"));
  }
  std::vector<uint8_t> payload(static_cast<size_t>(info->nbytes));
  GODIVA_RETURN_IF_ERROR(
      file_->Read(info->offset, info->nbytes, payload.data()));
  std::string actual =
      StrFormat("%08x", Crc32(payload.data(), info->nbytes));
  if (actual != *stored) {
    return DataLossError(StrFormat(
        "%s: dataset %s checksum mismatch (stored %s, computed %s)",
        path_.c_str(), name.c_str(), stored->c_str(), actual.c_str()));
  }
  return Status::Ok();
}

Status Reader::VerifyAllChecksums() const {
  for (const DatasetInfo& info : datasets_) {
    if (info.FindAttribute(kChecksumAttribute) == nullptr) continue;
    GODIVA_RETURN_IF_ERROR(VerifyChecksum(info.name));
  }
  return Status::Ok();
}

Status Reader::ReadRange(const std::string& name, int64_t byte_offset,
                         int64_t nbytes, void* out) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  if (byte_offset < 0 || nbytes < 0 || byte_offset + nbytes > info->nbytes) {
    return OutOfRangeError(
        StrFormat("range [%lld, %lld) outside dataset %s of %lld bytes",
                  static_cast<long long>(byte_offset),
                  static_cast<long long>(byte_offset + nbytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  return file_->Read(info->offset + byte_offset, nbytes, out);
}

}  // namespace godiva::gsdf
