#include "gsdf/reader.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"
#include "gsdf/format.h"

namespace godiva::gsdf {
namespace {

// Bounds-checked cursor over a byte buffer.
class Cursor {
 public:
  Cursor(const uint8_t* data, int64_t size) : data_(data), size_(size) {}

  Result<uint32_t> ReadU32() {
    GODIVA_RETURN_IF_ERROR(Need(4));
    uint32_t value = DecodeU32(data_ + pos_);
    pos_ += 4;
    return value;
  }

  Result<uint64_t> ReadU64() {
    GODIVA_RETURN_IF_ERROR(Need(8));
    uint64_t value = DecodeU64(data_ + pos_);
    pos_ += 8;
    return value;
  }

  Result<uint8_t> ReadU8() {
    GODIVA_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }

  Result<std::string> ReadString() {
    GODIVA_ASSIGN_OR_RETURN(uint32_t length, ReadU32());
    GODIVA_RETURN_IF_ERROR(Need(length));
    std::string out(reinterpret_cast<const char*>(data_ + pos_), length);
    pos_ += length;
    return out;
  }

  int64_t remaining() const { return size_ - pos_; }
  int64_t position() const { return pos_; }

  Result<AttributeList> ReadAttributes() {
    GODIVA_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
    // Each attribute needs at least two length prefixes (8 bytes); a count
    // beyond that is corruption — reject before reserving memory for it.
    if (static_cast<int64_t>(count) > remaining() / 8) {
      return DataLossError("gsdf attribute count exceeds directory size");
    }
    AttributeList attrs;
    attrs.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      GODIVA_ASSIGN_OR_RETURN(std::string key, ReadString());
      GODIVA_ASSIGN_OR_RETURN(std::string value, ReadString());
      attrs.emplace_back(std::move(key), std::move(value));
    }
    return attrs;
  }

 private:
  Status Need(int64_t n) {
    if (pos_ + n > size_) {
      return DataLossError("gsdf directory truncated");
    }
    return Status::Ok();
  }

  const uint8_t* data_;
  int64_t size_;
  int64_t pos_ = 0;
};

}  // namespace

const std::string* DatasetInfo::FindAttribute(const std::string& key) const {
  for (const auto& [attr_key, attr_value] : attributes) {
    if (attr_key == key) return &attr_value;
  }
  return nullptr;
}

Reader::Reader(Env* env, std::string path)
    : path_(std::move(path)), env_(env) {}

Result<std::unique_ptr<Reader>> Reader::Open(Env* env,
                                             const std::string& path) {
  auto reader = std::unique_ptr<Reader>(new Reader(env, path));
  GODIVA_RETURN_IF_ERROR(reader->Load());
  return reader;
}

Result<std::unique_ptr<Reader>> Reader::OpenSalvage(Env* env,
                                                    const std::string& path) {
  auto reader = std::unique_ptr<Reader>(new Reader(env, path));
  Status status = reader->Load();
  if (status.ok()) return reader;
  // A structurally broken file falls back to the recovery scan; an
  // unreadable one (missing, I/O error) does not — there is nothing to scan.
  if (reader->file_ == nullptr) return status;
  reader->datasets_.clear();
  reader->dataset_index_.clear();
  reader->file_attributes_.clear();
  reader->salvaged_ = true;
  reader->salvage_error_ = status;
  GODIVA_RETURN_IF_ERROR(reader->LoadSalvage());
  return reader;
}

Status Reader::Load() {
  GODIVA_ASSIGN_OR_RETURN(file_, env_->NewRandomAccessFile(path_));
  int64_t file_size = file_->Size();
  if (file_size < kHeaderSize + kFooterSizeV1) {
    return DataLossError(StrCat(path_, ": too small to be a gsdf file"));
  }

  uint8_t header[kHeaderSize];
  GODIVA_RETURN_IF_ERROR(file_->Read(0, kHeaderSize, header));
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(StrCat(path_, ": bad gsdf magic"));
  }
  uint32_t version = DecodeU32(header + 4);
  if (!IsSupportedVersion(version)) {
    return DataLossError(
        StrFormat("%s: unsupported gsdf version %u", path_.c_str(), version));
  }
  version_ = version;
  const int64_t footer_size = FooterSizeForVersion(version);
  if (file_size < kHeaderSize + footer_size) {
    return DataLossError(StrCat(path_, ": too small to be a gsdf file"));
  }

  uint8_t footer[kFooterSize];  // large enough for either version
  GODIVA_RETURN_IF_ERROR(
      file_->Read(file_size - footer_size, footer_size, footer));
  if (std::memcmp(footer + footer_size - 4, kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    return DataLossError(StrCat(path_, ": bad gsdf footer magic"));
  }
  int64_t dir_offset = static_cast<int64_t>(DecodeU64(footer));
  int64_t dataset_count = static_cast<int64_t>(DecodeU64(footer + 8));
  if (dir_offset < kHeaderSize || dir_offset > file_size - footer_size) {
    return DataLossError(StrCat(path_, ": directory offset out of range"));
  }

  int64_t dir_size = file_size - footer_size - dir_offset;
  std::vector<uint8_t> dir_bytes(static_cast<size_t>(dir_size));
  GODIVA_RETURN_IF_ERROR(file_->Read(dir_offset, dir_size, dir_bytes.data()));

  if (version >= kVersion) {
    // v2 tail CRC covers [dir_offset, file_size - 8): the directory bytes
    // plus the footer's dir_offset and dataset_count fields.
    uint32_t computed = Crc32(dir_bytes.data(), dir_size);
    computed = Crc32(footer, 16, computed);
    uint32_t stored = DecodeU32(footer + 16);
    if (computed != stored) {
      return DataLossError(StrFormat(
          "%s: directory CRC mismatch (stored %08x, computed %08x)",
          path_.c_str(), stored, computed));
    }
  }

  // A directory entry is at least name-length + type + offset + size +
  // attribute-count = 25 bytes; a larger claimed count is corruption.
  if (dataset_count < 0 || dataset_count > dir_size / 25) {
    return DataLossError(
        StrCat(path_, ": dataset count exceeds directory size"));
  }

  Cursor cursor(dir_bytes.data(), dir_size);
  datasets_.reserve(static_cast<size_t>(dataset_count));
  for (int64_t i = 0; i < dataset_count; ++i) {
    DatasetInfo info;
    GODIVA_ASSIGN_OR_RETURN(info.name, cursor.ReadString());
    GODIVA_ASSIGN_OR_RETURN(uint8_t raw_type, cursor.ReadU8());
    if (!IsValidDataType(raw_type)) {
      return DataLossError(
          StrFormat("%s: dataset %s has invalid type %u", path_.c_str(),
                    info.name.c_str(), raw_type));
    }
    info.type = static_cast<DataType>(raw_type);
    GODIVA_ASSIGN_OR_RETURN(uint64_t offset, cursor.ReadU64());
    GODIVA_ASSIGN_OR_RETURN(uint64_t nbytes, cursor.ReadU64());
    info.offset = static_cast<int64_t>(offset);
    info.nbytes = static_cast<int64_t>(nbytes);
    if (info.nbytes < 0 || info.offset < kHeaderSize ||
        info.offset + info.nbytes > dir_offset) {
      return DataLossError(StrCat(path_, ": dataset ", info.name,
                                  " payload out of range"));
    }
    GODIVA_ASSIGN_OR_RETURN(info.attributes, cursor.ReadAttributes());
    dataset_index_.emplace(info.name, datasets_.size());
    datasets_.push_back(std::move(info));
  }
  GODIVA_ASSIGN_OR_RETURN(file_attributes_, cursor.ReadAttributes());
  return Status::Ok();
}

namespace {

// A directory entry is at least name_len + 1-char name + type + offset +
// nbytes + attr count.
constexpr int64_t kMinEntrySize = 4 + 1 + 1 + 8 + 8 + 4;

// Attempts to parse one directory entry at `pos` of the in-memory file
// image and prove it genuine: plausible printable name, valid dtype,
// payload fully inside [kHeaderSize, pos), and a __crc32 attribute that
// matches the payload bytes. Returns the encoded entry size on success, -1
// on any mismatch. The CRC requirement makes false positives on payload
// bytes that merely look like an entry all but impossible.
int64_t TrySalvageEntry(const uint8_t* data, int64_t pos, int64_t size,
                        DatasetInfo* out) {
  Cursor cursor(data + pos, size - pos);
  Result<std::string> name = cursor.ReadString();
  if (!name.ok() || name->empty() || name->size() > 4096) return -1;
  for (char c : *name) {
    if (c < 0x20 || c > 0x7e) return -1;  // gsdf names are printable ASCII
  }
  Result<uint8_t> raw_type = cursor.ReadU8();
  if (!raw_type.ok() || !IsValidDataType(*raw_type)) return -1;
  Result<uint64_t> offset = cursor.ReadU64();
  Result<uint64_t> nbytes = cursor.ReadU64();
  if (!offset.ok() || !nbytes.ok()) return -1;
  int64_t payload_offset = static_cast<int64_t>(*offset);
  int64_t payload_bytes = static_cast<int64_t>(*nbytes);
  if (payload_bytes < 0 || payload_offset < kHeaderSize ||
      payload_bytes > pos || payload_offset > pos - payload_bytes) {
    return -1;  // payloads always precede the directory
  }
  Result<AttributeList> attributes = cursor.ReadAttributes();
  if (!attributes.ok()) return -1;
  const std::string* stored = nullptr;
  for (const auto& [key, value] : *attributes) {
    if (key == kChecksumAttribute) stored = &value;
  }
  // Unchecksummed datasets cannot be proven intact; salvage skips them.
  if (stored == nullptr) return -1;
  std::string actual =
      StrFormat("%08x", Crc32(data + payload_offset, payload_bytes));
  if (actual != *stored) return -1;
  out->name = std::move(*name);
  out->type = static_cast<DataType>(*raw_type);
  out->offset = payload_offset;
  out->nbytes = payload_bytes;
  out->attributes = std::move(*attributes);
  return cursor.position();
}

}  // namespace

Status Reader::LoadSalvage() {
  int64_t file_size = file_->Size();
  if (file_size < kHeaderSize) {
    return DataLossError(StrCat(path_, ": too small to salvage"));
  }
  std::vector<uint8_t> all(static_cast<size_t>(file_size));
  GODIVA_RETURN_IF_ERROR(file_->Read(0, file_size, all.data()));
  if (std::memcmp(all.data(), kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(StrCat(path_, ": bad gsdf magic"));
  }
  version_ = DecodeU32(all.data() + 4);  // best effort; may itself be torn
  // Forward scan: at each byte try to parse a provably-intact directory
  // entry; on success jump past it, otherwise advance one byte. A crash
  // mid-directory thus recovers every complete entry before the tear.
  for (int64_t pos = kHeaderSize; pos + kMinEntrySize <= file_size;) {
    DatasetInfo info;
    int64_t consumed = TrySalvageEntry(all.data(), pos, file_size, &info);
    if (consumed < 0) {
      ++pos;
      continue;
    }
    pos += consumed;
    if (dataset_index_.count(info.name) > 0) continue;  // first wins
    dataset_index_.emplace(info.name, datasets_.size());
    datasets_.push_back(std::move(info));
  }
  return Status::Ok();
}

Result<const DatasetInfo*> Reader::Find(const std::string& name) const {
  auto it = dataset_index_.find(name);
  if (it == dataset_index_.end()) {
    return NotFoundError(StrCat(path_, ": no dataset named ", name));
  }
  return &datasets_[it->second];
}

Status Reader::Read(const std::string& name, void* out,
                    int64_t out_bytes) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  if (out_bytes < info->nbytes) {
    return InvalidArgumentError(
        StrFormat("buffer of %lld bytes too small for dataset %s (%lld)",
                  static_cast<long long>(out_bytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  return file_->Read(info->offset, info->nbytes, out);
}

Status Reader::ReadVerified(const std::string& name, void* out,
                            int64_t out_bytes) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  const std::string* stored = info->FindAttribute(kChecksumAttribute);
  if (stored == nullptr) {
    return FailedPreconditionError(
        StrCat(path_, ": dataset ", name, " has no checksum"));
  }
  if (out_bytes < info->nbytes) {
    return InvalidArgumentError(
        StrFormat("buffer of %lld bytes too small for dataset %s (%lld)",
                  static_cast<long long>(out_bytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  GODIVA_RETURN_IF_ERROR(file_->Read(info->offset, info->nbytes, out));
  std::string actual = StrFormat("%08x", Crc32(out, info->nbytes));
  if (actual != *stored) {
    return DataLossError(StrFormat(
        "%s: dataset %s checksum mismatch (stored %s, computed %s)",
        path_.c_str(), name.c_str(), stored->c_str(), actual.c_str()));
  }
  return Status::Ok();
}

Status Reader::VerifyChecksum(const std::string& name) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  const std::string* stored = info->FindAttribute(kChecksumAttribute);
  if (stored == nullptr) {
    return FailedPreconditionError(
        StrCat(path_, ": dataset ", name, " has no checksum"));
  }
  std::vector<uint8_t> payload(static_cast<size_t>(info->nbytes));
  GODIVA_RETURN_IF_ERROR(
      file_->Read(info->offset, info->nbytes, payload.data()));
  std::string actual =
      StrFormat("%08x", Crc32(payload.data(), info->nbytes));
  if (actual != *stored) {
    return DataLossError(StrFormat(
        "%s: dataset %s checksum mismatch (stored %s, computed %s)",
        path_.c_str(), name.c_str(), stored->c_str(), actual.c_str()));
  }
  return Status::Ok();
}

Status Reader::VerifyAllChecksums() const {
  for (const DatasetInfo& info : datasets_) {
    if (info.FindAttribute(kChecksumAttribute) == nullptr) continue;
    GODIVA_RETURN_IF_ERROR(VerifyChecksum(info.name));
  }
  return Status::Ok();
}

Result<BatchStats> Reader::ReadBatch(
    const std::vector<BatchRequest>& requests,
    const BatchOptions& options) const {
  struct Resolved {
    const DatasetInfo* info;
    const BatchRequest* request;
  };
  std::vector<Resolved> resolved;
  resolved.reserve(requests.size());
  for (const BatchRequest& request : requests) {
    GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(request.name));
    if (request.out_bytes < info->nbytes) {
      return InvalidArgumentError(StrFormat(
          "buffer of %lld bytes too small for dataset %s (%lld)",
          static_cast<long long>(request.out_bytes), request.name.c_str(),
          static_cast<long long>(info->nbytes)));
    }
    if (options.verify &&
        info->FindAttribute(kChecksumAttribute) == nullptr) {
      return FailedPreconditionError(
          StrCat(path_, ": dataset ", request.name, " has no checksum"));
    }
    resolved.push_back({info, &request});
  }
  std::sort(resolved.begin(), resolved.end(),
            [](const Resolved& a, const Resolved& b) {
              return a.info->offset < b.info->offset;
            });

  BatchStats stats;
  std::vector<uint8_t> scratch;
  int64_t max_gap = std::max<int64_t>(0, options.max_gap);
  int64_t max_transfer = std::max<int64_t>(1, options.max_transfer);
  // Each dataset is verified exactly once, from wherever its bytes first
  // land: coalesced datasets from the merged extent in scratch, lone
  // datasets from the destination buffer. The old shape re-walked every
  // destination in a trailing pass, re-checksumming coalesced datasets a
  // second time.
  auto verify_entry = [&](const Resolved& entry, const void* data) -> Status {
    const std::string* stored =
        entry.info->FindAttribute(kChecksumAttribute);
    std::string actual =
        StrFormat("%08x", Crc32(data, entry.info->nbytes));
    if (actual != *stored) {
      return DataLossError(StrFormat(
          "%s: dataset %s checksum mismatch (stored %s, computed %s)",
          path_.c_str(), entry.info->name.c_str(), stored->c_str(),
          actual.c_str()));
    }
    return Status::Ok();
  };
  for (size_t begin = 0; begin < resolved.size();) {
    // Grow the run while the next dataset starts within max_gap of the
    // run's end and the merged span stays under max_transfer.
    int64_t run_start = resolved[begin].info->offset;
    int64_t run_end = run_start + resolved[begin].info->nbytes;
    size_t end = begin + 1;
    while (end < resolved.size()) {
      const DatasetInfo* next = resolved[end].info;
      if (next->offset > run_end + max_gap) break;
      int64_t merged_end = std::max(run_end, next->offset + next->nbytes);
      if (merged_end - run_start > max_transfer &&
          run_end - run_start > 0) {
        break;
      }
      run_end = merged_end;
      ++end;
    }

    ++stats.transfers;
    if (end == begin + 1) {
      // Lone dataset: straight into its destination, no scratch copy.
      const Resolved& only = resolved[begin];
      GODIVA_RETURN_IF_ERROR(file_->Read(only.info->offset,
                                         only.info->nbytes,
                                         only.request->out));
      if (options.verify) {
        GODIVA_RETURN_IF_ERROR(verify_entry(only, only.request->out));
      }
    } else {
      int64_t span = run_end - run_start;
      scratch.resize(static_cast<size_t>(span));
      GODIVA_RETURN_IF_ERROR(file_->Read(run_start, span, scratch.data()));
      int64_t payload_bytes = 0;
      for (size_t i = begin; i < end; ++i) {
        const Resolved& entry = resolved[i];
        const uint8_t* src =
            scratch.data() + (entry.info->offset - run_start);
        if (options.verify) {
          GODIVA_RETURN_IF_ERROR(verify_entry(entry, src));
          ++stats.redundant_verifies_skipped;
        }
        std::memcpy(entry.request->out, src,
                    static_cast<size_t>(entry.info->nbytes));
        payload_bytes += entry.info->nbytes;
      }
      stats.coalesced += static_cast<int64_t>(end - begin) - 1;
      stats.gap_bytes += std::max<int64_t>(0, span - payload_bytes);
    }
    begin = end;
  }
  return stats;
}

Result<std::vector<DatasetExtent>> Reader::DescribeExtents(
    const std::vector<std::string>& names) const {
  std::vector<DatasetExtent> extents;
  extents.reserve(names.size());
  for (const std::string& name : names) {
    GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
    extents.push_back({info->name, info->offset, info->nbytes});
  }
  return extents;
}

Status Reader::ReadRange(const std::string& name, int64_t byte_offset,
                         int64_t nbytes, void* out) const {
  GODIVA_ASSIGN_OR_RETURN(const DatasetInfo* info, Find(name));
  if (byte_offset < 0 || nbytes < 0 || byte_offset + nbytes > info->nbytes) {
    return OutOfRangeError(
        StrFormat("range [%lld, %lld) outside dataset %s of %lld bytes",
                  static_cast<long long>(byte_offset),
                  static_cast<long long>(byte_offset + nbytes), name.c_str(),
                  static_cast<long long>(info->nbytes)));
  }
  return file_->Read(info->offset + byte_offset, nbytes, out);
}

}  // namespace godiva::gsdf
