// gsdf file reader: parses the directory at open, then serves positioned
// dataset reads through the underlying Env file handle (so each dataset
// access pays the storage model's seek/transfer costs, like HDF4 did on a
// real disk).
#ifndef GODIVA_GSDF_READER_H_
#define GODIVA_GSDF_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gsdf/format.h"
#include "gsdf/writer.h"
#include "sim/env.h"

namespace godiva::gsdf {

struct DatasetInfo {
  std::string name;
  DataType type = DataType::kByte;
  int64_t offset = 0;  // payload position within the file
  int64_t nbytes = 0;
  AttributeList attributes;

  int64_t num_elements() const { return nbytes / SizeOf(type); }

  // Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(const std::string& key) const;
};

// One request of a ReadBatch: a whole dataset read into `out`, which must
// hold at least the dataset's nbytes.
struct BatchRequest {
  std::string name;
  void* out = nullptr;
  int64_t out_bytes = 0;
};

// What a ReadBatch actually issued against the file.
struct BatchStats {
  int64_t transfers = 0;  // file reads performed
  int64_t coalesced = 0;  // requests that rode along a neighbour's transfer
  int64_t gap_bytes = 0;  // inter-dataset bytes read and discarded
  int64_t redundant_verifies_skipped = 0;  // datasets whose checksum was
                                           // taken from the merged extent
                                           // as it landed, instead of a
                                           // second per-dataset pass over
                                           // the scattered copies
};

// A dataset's placement within the file: the directory facts an external
// planner (core/query_plan.h) needs to lay out cross-request batches.
struct DatasetExtent {
  std::string name;
  int64_t offset = 0;
  int64_t nbytes = 0;
};

// Coalescing thresholds for ReadBatch.
struct BatchOptions {
  // Two runs of datasets are merged into one transfer when the file gap
  // between them is at most this many bytes (the discarded gap is cheaper
  // than a seek, cf. the paper's HDF4 access costs).
  int64_t max_gap = 64 * 1024;
  // Upper bound on a single merged transfer, so coalescing never needs an
  // unboundedly large scratch buffer.
  int64_t max_transfer = 8 * 1024 * 1024;
  // Check each dataset against its __crc32 attribute after the bytes land
  // (FAILED_PRECONDITION if a dataset carries no checksum).
  bool verify = false;
};

// Thread-compatible: concurrent Read()s are safe iff the underlying
// RandomAccessFile is (both provided backends are).
class Reader {
 public:
  // Opens `path`, validates magic/version (v1 and v2 accepted; v2 also
  // checks the tail CRC), and loads the directory.
  static Result<std::unique_ptr<Reader>> Open(Env* env,
                                              const std::string& path);

  // Like Open, but when the footer/directory is corrupt or truncated,
  // forward-scans the file for directory entries whose payload CRC-32
  // verifies, and serves exactly those datasets. The structural error that
  // forced the scan is kept in salvage_error() (a DATA_LOSS, so callers can
  // surface partial results as degraded rather than unavailable). Fails
  // only if the file cannot be read at all or lacks the gsdf magic.
  static Result<std::unique_ptr<Reader>> OpenSalvage(Env* env,
                                                     const std::string& path);

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader() = default;

  const std::vector<DatasetInfo>& datasets() const { return datasets_; }
  const AttributeList& file_attributes() const { return file_attributes_; }
  const std::string& path() const { return path_; }
  uint32_t version() const { return version_; }

  // True iff this reader was produced by a salvage scan (the normal load
  // failed). salvage_error() then holds why.
  bool salvaged() const { return salvaged_; }
  const Status& salvage_error() const { return salvage_error_; }

  // Returns the directory entry for `name`, or NOT_FOUND.
  Result<const DatasetInfo*> Find(const std::string& name) const;

  // Reads the whole payload of `name` into `out` (which must hold
  // `out_bytes` ≥ dataset size; exactly dataset-size bytes are read).
  Status Read(const std::string& name, void* out, int64_t out_bytes) const;

  // Reads `nbytes` starting `byte_offset` into the payload of `name`.
  Status ReadRange(const std::string& name, int64_t byte_offset,
                   int64_t nbytes, void* out) const;

  // Reads several whole datasets in one pass, merging requests that sit
  // adjacent in the file (within options.max_gap, up to
  // options.max_transfer per merged transfer) into single reads — so a
  // block's x/y/z/conn/quantity arrays, written back to back by the
  // snapshot writer, cost one seek instead of five. Validates every
  // request (and, with options.verify, every checksum) and fails without
  // partial effects being reported; buffer contents are unspecified on
  // error. With options.verify, each dataset is checksummed exactly once
  // as its bytes land — coalesced datasets straight from the merged
  // extent — so a mismatch surfaces before later transfers are issued.
  // Returns what was actually issued.
  Result<BatchStats> ReadBatch(const std::vector<BatchRequest>& requests,
                               const BatchOptions& options = {}) const;

  // Resolves `names` against the directory and returns their file
  // placement, in request order, without issuing any payload I/O. This is
  // the planning half of ReadBatch: the query layer lays out per-file
  // batch plans from these extents, then executes them through ReadBatch.
  // NOT_FOUND if any name is absent.
  Result<std::vector<DatasetExtent>> DescribeExtents(
      const std::vector<std::string>& names) const;

  // Like Read, but additionally checks the payload against its __crc32
  // attribute in the same pass (no second read of the data). Returns
  // DATA_LOSS on mismatch — `out` then holds the corrupt bytes and must not
  // be used — and FAILED_PRECONDITION if the dataset carries no checksum.
  Status ReadVerified(const std::string& name, void* out,
                      int64_t out_bytes) const;

  // Reads the dataset and verifies it against its __crc32 attribute.
  // Returns DATA_LOSS on mismatch, FAILED_PRECONDITION if the file was
  // written without checksums.
  Status VerifyChecksum(const std::string& name) const;

  // Verifies every checksummed dataset; fails on the first mismatch.
  Status VerifyAllChecksums() const;

 private:
  Reader(Env* env, std::string path);

  Status Load();
  // Best-effort recovery scan over the whole file; populates datasets_ with
  // every parseable, checksum-valid directory entry.
  Status LoadSalvage();

  std::string path_;
  std::unique_ptr<RandomAccessFile> file_;
  std::vector<DatasetInfo> datasets_;
  // Name → index into datasets_, so Find() is O(1) even for files with
  // hundreds of datasets (a snapshot file has ~300).
  std::unordered_map<std::string, size_t> dataset_index_;
  AttributeList file_attributes_;
  Env* env_;
  uint32_t version_ = kVersion;
  bool salvaged_ = false;
  Status salvage_error_ = Status::Ok();
};

}  // namespace godiva::gsdf

#endif  // GODIVA_GSDF_READER_H_
