#include "gsdf/writer.h"

#include <memory>
#include <string>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"
#include "gsdf/format.h"

namespace godiva::gsdf {
namespace {

void EncodeString(const std::string& s, std::string* out) {
  EncodeU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void EncodeAttributes(const AttributeList& attributes, std::string* out) {
  EncodeU32(static_cast<uint32_t>(attributes.size()), out);
  for (const auto& [key, value] : attributes) {
    EncodeString(key, out);
    EncodeString(value, out);
  }
}

}  // namespace

Writer::Writer(std::unique_ptr<WritableFile> file, Options options)
    : file_(std::move(file)), options_(options) {}

Result<std::unique_ptr<Writer>> Writer::Create(Env* env,
                                               const std::string& path,
                                               Options options) {
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          env->NewWritableFile(path));
  auto writer =
      std::unique_ptr<Writer>(new Writer(std::move(file), options));
  std::string header(kMagic, sizeof(kMagic));
  EncodeU32(kVersion, &header);
  EncodeU64(0, &header);  // reserved
  GODIVA_RETURN_IF_ERROR(writer->file_->Append(header.data(),
                                               static_cast<int64_t>(header.size())));
  writer->write_offset_ = static_cast<int64_t>(header.size());
  return writer;
}

Status Writer::AddDataset(const std::string& name, DataType type,
                          const void* data, int64_t nbytes,
                          AttributeList attributes) {
  if (finished_) return FailedPreconditionError("writer already finished");
  if (name.empty()) return InvalidArgumentError("dataset name is empty");
  if (nbytes < 0 || nbytes % SizeOf(type) != 0) {
    return InvalidArgumentError(
        StrCat("dataset ", name, ": size ", nbytes,
               " is not a multiple of element size ", SizeOf(type)));
  }
  for (const DatasetEntry& entry : datasets_) {
    if (entry.name == name) {
      return AlreadyExistsError(StrCat("duplicate dataset: ", name));
    }
  }
  if (nbytes > 0) {
    GODIVA_RETURN_IF_ERROR(file_->Append(data, nbytes));
  }
  if (options_.checksums) {
    attributes.emplace_back(kChecksumAttribute,
                            StrFormat("%08x", Crc32(data, nbytes)));
  }
  datasets_.push_back(DatasetEntry{name, type, write_offset_, nbytes,
                                   std::move(attributes)});
  write_offset_ += nbytes;
  return Status::Ok();
}

void Writer::SetFileAttribute(const std::string& key,
                              const std::string& value) {
  for (auto& [existing_key, existing_value] : file_attributes_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  file_attributes_.emplace_back(key, value);
}

Status Writer::Finish() {
  if (finished_) return FailedPreconditionError("writer already finished");
  finished_ = true;
  int64_t dir_offset = write_offset_;
  std::string tail;
  for (const DatasetEntry& entry : datasets_) {
    EncodeString(entry.name, &tail);
    tail.push_back(static_cast<char>(entry.type));
    EncodeU64(static_cast<uint64_t>(entry.offset), &tail);
    EncodeU64(static_cast<uint64_t>(entry.nbytes), &tail);
    EncodeAttributes(entry.attributes, &tail);
  }
  EncodeAttributes(file_attributes_, &tail);
  EncodeU64(static_cast<uint64_t>(dir_offset), &tail);
  EncodeU64(static_cast<uint64_t>(datasets_.size()), &tail);
  tail.append(kFooterMagic, sizeof(kFooterMagic));
  GODIVA_RETURN_IF_ERROR(
      file_->Append(tail.data(), static_cast<int64_t>(tail.size())));
  return file_->Close();
}

}  // namespace godiva::gsdf
