#include "gsdf/writer.h"

#include <memory>
#include <string>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"
#include "gsdf/format.h"

namespace godiva::gsdf {
namespace {

void EncodeString(const std::string& s, std::string* out) {
  EncodeU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void EncodeAttributes(const AttributeList& attributes, std::string* out) {
  EncodeU32(static_cast<uint32_t>(attributes.size()), out);
  for (const auto& [key, value] : attributes) {
    EncodeString(key, out);
    EncodeString(value, out);
  }
}

}  // namespace

Writer::Writer(Env* env, std::unique_ptr<WritableFile> file,
               std::string final_path, std::string write_path, Options options)
    : env_(env),
      file_(std::move(file)),
      final_path_(std::move(final_path)),
      write_path_(std::move(write_path)),
      options_(options) {}

Writer::~Writer() {
  if (!finished_) Abandon();
}

void Writer::Abandon() {
  if (file_ != nullptr) {
    // lint: discard_ok(abandon path: the temp file is deleted next anyway)
    (void)file_->Close();
    file_ = nullptr;
  }
  // Best effort: after a crash-point fault even the delete fails, which is
  // exactly right — a dead machine cannot clean up its torn temp file.
  // lint: discard_ok(best-effort cleanup; see comment above)
  (void)env_->DeleteFile(write_path_);
}

Result<std::unique_ptr<Writer>> Writer::Create(Env* env,
                                               const std::string& path,
                                               Options options) {
  if (options.version == 0) options.version = kVersion;
  if (!IsSupportedVersion(options.version)) {
    return InvalidArgumentError(
        StrCat("unsupported gsdf version ", options.version));
  }
  std::string write_path = options.atomic ? TempPath(path) : path;
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                          env->NewWritableFile(write_path));
  auto writer = std::unique_ptr<Writer>(
      new Writer(env, std::move(file), path, std::move(write_path), options));
  std::string header(kMagic, sizeof(kMagic));
  EncodeU32(options.version, &header);
  EncodeU64(0, &header);  // reserved
  Status status = writer->file_->Append(
      header.data(), static_cast<int64_t>(header.size()));
  if (!status.ok()) {
    writer->Abandon();
    writer->finished_ = true;  // Abandoned; keep the destructor idempotent.
    return status;
  }
  writer->write_offset_ = static_cast<int64_t>(header.size());
  return writer;
}

Status Writer::AddDataset(const std::string& name, DataType type,
                          const void* data, int64_t nbytes,
                          AttributeList attributes) {
  if (finished_) return FailedPreconditionError("writer already finished");
  if (name.empty()) return InvalidArgumentError("dataset name is empty");
  if (nbytes < 0 || nbytes % SizeOf(type) != 0) {
    return InvalidArgumentError(
        StrCat("dataset ", name, ": size ", nbytes,
               " is not a multiple of element size ", SizeOf(type)));
  }
  for (const DatasetEntry& entry : datasets_) {
    if (entry.name == name) {
      return AlreadyExistsError(StrCat("duplicate dataset: ", name));
    }
  }
  if (nbytes > 0) {
    GODIVA_RETURN_IF_ERROR(file_->Append(data, nbytes));
  }
  if (options_.checksums) {
    attributes.emplace_back(kChecksumAttribute,
                            StrFormat("%08x", Crc32(data, nbytes)));
  }
  datasets_.push_back(DatasetEntry{name, type, write_offset_, nbytes,
                                   std::move(attributes)});
  write_offset_ += nbytes;
  return Status::Ok();
}

void Writer::SetFileAttribute(const std::string& key,
                              const std::string& value) {
  for (auto& [existing_key, existing_value] : file_attributes_) {
    if (existing_key == key) {
      existing_value = value;
      return;
    }
  }
  file_attributes_.emplace_back(key, value);
}

Status Writer::Finish() {
  if (finished_) return FailedPreconditionError("writer already finished");
  finished_ = true;
  Status status = FinishInternal();
  if (!status.ok()) Abandon();
  return status;
}

Status Writer::FinishInternal() {
  int64_t dir_offset = write_offset_;
  std::string tail;
  for (const DatasetEntry& entry : datasets_) {
    EncodeString(entry.name, &tail);
    tail.push_back(static_cast<char>(entry.type));
    EncodeU64(static_cast<uint64_t>(entry.offset), &tail);
    EncodeU64(static_cast<uint64_t>(entry.nbytes), &tail);
    EncodeAttributes(entry.attributes, &tail);
  }
  EncodeAttributes(file_attributes_, &tail);
  EncodeU64(static_cast<uint64_t>(dir_offset), &tail);
  EncodeU64(static_cast<uint64_t>(datasets_.size()), &tail);
  if (options_.version >= kVersion) {
    // v2: CRC over everything the reader trusts to locate payloads — the
    // directory, file attrs, and the dir_offset/count just encoded.
    EncodeU32(Crc32(tail.data(), static_cast<int64_t>(tail.size())), &tail);
  }
  tail.append(kFooterMagic, sizeof(kFooterMagic));
  GODIVA_RETURN_IF_ERROR(
      file_->Append(tail.data(), static_cast<int64_t>(tail.size())));
  GODIVA_RETURN_IF_ERROR(file_->Sync());
  GODIVA_RETURN_IF_ERROR(file_->Close());
  file_ = nullptr;
  if (options_.atomic) {
    GODIVA_RETURN_IF_ERROR(env_->RenameFile(write_path_, final_path_));
  }
  return Status::Ok();
}

}  // namespace godiva::gsdf
