// gsdf_cat: prints the values of one dataset from a gsdf file.
//
// Usage: gsdf_cat [--limit=N] [--verify] [--salvage] <file> <dataset>
//   --limit=N   print at most N elements (default 32; 0 = all)
//   --verify    check the dataset against its __crc32 while reading; a
//               mismatch prints nothing and exits nonzero
//   --salvage   when the footer/directory is corrupt, serve the dataset
//               from a salvage scan (checksum-valid entries only)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gsdf/reader.h"
#include "sim/env.h"

namespace godiva::tools {
namespace {

Status CatDataset(const std::string& path, const std::string& dataset,
                  int64_t limit, bool verify, bool salvage) {
  std::unique_ptr<gsdf::Reader> reader;
  Result<std::unique_ptr<gsdf::Reader>> opened =
      gsdf::Reader::Open(GetPosixEnv(), path);
  if (opened.ok()) {
    reader = std::move(*opened);
  } else if (salvage) {
    GODIVA_ASSIGN_OR_RETURN(reader,
                            gsdf::Reader::OpenSalvage(GetPosixEnv(), path));
    std::fprintf(stderr, "%s: salvage mode — %s\n", path.c_str(),
                 reader->salvage_error().ToString().c_str());
  } else {
    return opened.status();
  }
  GODIVA_ASSIGN_OR_RETURN(const gsdf::DatasetInfo* info,
                          reader->Find(dataset));
  std::vector<uint8_t> payload(static_cast<size_t>(info->nbytes));
  GODIVA_RETURN_IF_ERROR(
      verify ? reader->ReadVerified(dataset, payload.data(), info->nbytes)
             : reader->Read(dataset, payload.data(), info->nbytes));

  int64_t elements = info->num_elements();
  int64_t to_print = (limit == 0) ? elements : std::min(limit, elements);
  switch (info->type) {
    case DataType::kFloat64:
      for (int64_t i = 0; i < to_print; ++i) {
        std::printf("%.17g\n",
                    reinterpret_cast<const double*>(payload.data())[i]);
      }
      break;
    case DataType::kFloat32:
      for (int64_t i = 0; i < to_print; ++i) {
        std::printf("%.9g\n",
                    reinterpret_cast<const float*>(payload.data())[i]);
      }
      break;
    case DataType::kInt32:
      for (int64_t i = 0; i < to_print; ++i) {
        std::printf("%d\n",
                    reinterpret_cast<const int32_t*>(payload.data())[i]);
      }
      break;
    case DataType::kInt64:
      for (int64_t i = 0; i < to_print; ++i) {
        std::printf("%lld\n",
                    static_cast<long long>(
                        reinterpret_cast<const int64_t*>(payload.data())[i]));
      }
      break;
    case DataType::kString:
      std::fwrite(payload.data(), 1, static_cast<size_t>(to_print), stdout);
      std::printf("\n");
      break;
    case DataType::kByte:
      for (int64_t i = 0; i < to_print; ++i) {
        std::printf("%02x%s", payload[static_cast<size_t>(i)],
                    (i + 1) % 16 == 0 ? "\n" : " ");
      }
      std::printf("\n");
      break;
  }
  if (to_print < elements) {
    std::fprintf(stderr, "... %lld of %lld elements shown (--limit=0 for "
                         "all)\n",
                 static_cast<long long>(to_print),
                 static_cast<long long>(elements));
  }
  return Status::Ok();
}

int Run(int argc, char** argv) {
  int64_t limit = 32;
  bool verify = false;
  bool salvage = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--limit=", 8) == 0) {
      limit = std::atoll(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: gsdf_cat [--limit=N] [--verify] [--salvage] "
                 "<file> <dataset>\n");
    return 2;
  }
  Status status =
      CatDataset(positional[0], positional[1], limit, verify, salvage);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace godiva::tools

int main(int argc, char** argv) { return godiva::tools::Run(argc, argv); }
