// gsdf_fsck: integrity checker and salvage tool for gsdf files.
//
// Usage: gsdf_fsck [--salvage] [--out=PATH] <file>...
//   default      structural open (magic, version, footer, v2 tail CRC) plus
//                every dataset's payload CRC-32. Prints one "ok" line per
//                healthy file; one-line error to stderr and exit 1 otherwise.
//   --salvage    when the structural open fails, forward-scan for
//                checksum-valid datasets and report what survives. The exit
//                code stays nonzero — data was lost even if some came back.
//   --out=PATH   rewrite the verified (or salvaged) datasets and file
//                attributes into a fresh file at PATH (single input file
//                only). The copy is written with the current format version
//                and fresh checksums.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "gsdf/reader.h"
#include "gsdf/writer.h"
#include "sim/env.h"

namespace godiva::tools {
namespace {

// Copies every dataset `reader` serves into a fresh gsdf file at `out_path`.
// The stored __crc32 attribute is dropped from the copy: the Writer computes
// a fresh one over the bytes it actually writes.
Status Rewrite(const gsdf::Reader& reader, const std::string& out_path) {
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<gsdf::Writer> writer,
                          gsdf::Writer::Create(GetPosixEnv(), out_path));
  for (const auto& [key, value] : reader.file_attributes()) {
    writer->SetFileAttribute(key, value);
  }
  for (const gsdf::DatasetInfo& info : reader.datasets()) {
    std::vector<uint8_t> payload(static_cast<size_t>(info.nbytes));
    // Never launder corrupt bytes under a fresh checksum: checksummed
    // datasets are verified while copying, and a mismatch skips the dataset.
    if (info.FindAttribute(gsdf::kChecksumAttribute) != nullptr) {
      Status read = reader.ReadVerified(info.name, payload.data(),
                                        info.nbytes);
      if (read.code() == StatusCode::kDataLoss) {
        std::fprintf(stderr, "  skipping corrupt dataset %s: %s\n",
                     info.name.c_str(), read.ToString().c_str());
        continue;
      }
      GODIVA_RETURN_IF_ERROR(read);
    } else {
      GODIVA_RETURN_IF_ERROR(
          reader.Read(info.name, payload.data(), info.nbytes));
    }
    gsdf::AttributeList attributes;
    for (const auto& attribute : info.attributes) {
      if (attribute.first != gsdf::kChecksumAttribute) {
        attributes.push_back(attribute);
      }
    }
    GODIVA_RETURN_IF_ERROR(writer->AddDataset(info.name, info.type,
                                              payload.data(), info.nbytes,
                                              std::move(attributes)));
  }
  return writer->Finish();
}

// Checks one file. Returns OK iff the file is fully healthy; prints findings
// either way. `salvaged_out` receives the reader to rewrite from (healthy or
// salvage), or stays null when nothing is readable.
Status CheckFile(const std::string& path, bool salvage,
                 std::unique_ptr<gsdf::Reader>* reader_out) {
  Result<std::unique_ptr<gsdf::Reader>> opened =
      gsdf::Reader::Open(GetPosixEnv(), path);
  if (opened.ok()) {
    Status verify = (*opened)->VerifyAllChecksums();
    if (verify.ok()) {
      std::printf("%s: ok (v%u, %d datasets)\n", path.c_str(),
                  (*opened)->version(),
                  static_cast<int>((*opened)->datasets().size()));
      *reader_out = std::move(*opened);
      return Status::Ok();
    }
    *reader_out = std::move(*opened);
    return verify;
  }
  if (!salvage) return opened.status();

  // Structural damage: fall back to the salvage scan.
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<gsdf::Reader> reader,
                          gsdf::Reader::OpenSalvage(GetPosixEnv(), path));
  std::printf("%s: structural damage (%s); salvaged %d checksum-valid "
              "datasets\n",
              path.c_str(), reader->salvage_error().ToString().c_str(),
              static_cast<int>(reader->datasets().size()));
  for (const gsdf::DatasetInfo& info : reader->datasets()) {
    std::printf("  recovered %-32s %12lld bytes\n", info.name.c_str(),
                static_cast<long long>(info.nbytes));
  }
  Status cause = opened.status();
  *reader_out = std::move(reader);
  return cause;
}

int Run(int argc, char** argv) {
  bool salvage = false;
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty() || (!out_path.empty() && paths.size() != 1)) {
    std::fprintf(stderr,
                 "usage: gsdf_fsck [--salvage] [--out=PATH] <file>...\n"
                 "       (--out accepts exactly one input file)\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    std::unique_ptr<gsdf::Reader> reader;
    Status status = CheckFile(path, salvage, &reader);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      ++failures;
    }
    if (!out_path.empty() && reader != nullptr) {
      Status rewrite = Rewrite(*reader, out_path);
      if (!rewrite.ok()) {
        std::fprintf(stderr, "%s: rewrite to %s failed: %s\n", path.c_str(),
                     out_path.c_str(), rewrite.ToString().c_str());
        ++failures;
      } else {
        std::printf("%s: wrote %d datasets to %s\n", path.c_str(),
                    static_cast<int>(reader->datasets().size()),
                    out_path.c_str());
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace godiva::tools

int main(int argc, char** argv) { return godiva::tools::Run(argc, argv); }
