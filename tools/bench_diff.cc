// Compares benchmark JSON outputs (bench_* --json=...) against a checked-in
// baseline and fails on regressions.
//
//   bench_diff --write-baseline=BENCH_baseline.json a.json b.json ...
//       merges the per-bench files into one baseline document, each metric
//       prefixed with its bench name ("bench_parallel.pool_t1_total_s").
//
//   bench_diff --baseline=BENCH_baseline.json a.json b.json ...
//       compares; exits 1 when any metric regresses by more than the
//       threshold (default 10%, --threshold=0.15 to widen) AND by more
//       than the absolute floor (default 0.1, --abs-floor=0.5 to widen —
//       keeps near-zero second counts from tripping on noise).
//
// Metrics are treated as costs (lower is better) unless the name contains
// "ratio", which flips the direction (higher is better). Metrics missing
// on either side are reported but never fail the run, so adding or
// retiring a metric does not break CI before the baseline refresh lands.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Document {
  std::string bench;  // "" in a merged baseline
  std::vector<std::pair<std::string, double>> metrics;
};

// Minimal parser for the flat documents the benches emit: a "bench" string
// field (optional) and a "metrics" object of string → number. Anything
// else in the file is ignored.
bool ParseDocument(const std::string& path, Document* doc) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* out) -> bool {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;  // keep escaped char
      out->push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };

  bool in_metrics = false;
  while (i < text.size()) {
    skip_ws();
    if (i >= text.size()) break;
    char c = text[i];
    if (c == '"') {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return false;
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::string value;
        if (!parse_string(&value)) return false;
        if (key == "bench") doc->bench = value;
      } else if (i < text.size() && text[i] == '{') {
        ++i;
        if (key == "metrics") in_metrics = true;
      } else {
        char* end = nullptr;
        double value = std::strtod(text.c_str() + i, &end);
        if (end == text.c_str() + i) {
          std::fprintf(stderr, "bench_diff: bad value for \"%s\" in %s\n",
                       key.c_str(), path.c_str());
          return false;
        }
        i = static_cast<size_t>(end - text.c_str());
        if (in_metrics) doc->metrics.emplace_back(key, value);
      }
    } else if (c == '}') {
      ++i;
      in_metrics = false;
    } else {
      ++i;  // commas, braces opening the document, stray tokens
    }
  }
  return true;
}

const double* FindMetric(const Document& doc, const std::string& name) {
  for (const auto& [key, value] : doc.metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HigherIsBetter(const std::string& name) {
  return name.find("ratio") != std::string::npos;
}

int WriteBaseline(const std::string& path,
                  const std::vector<Document>& docs) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"metrics\": {\n");
  bool first = true;
  for (const Document& doc : docs) {
    for (const auto& [key, value] : doc.metrics) {
      std::fprintf(out, "%s    \"%s.%s\": %.6g", first ? "" : ",\n",
                   doc.bench.c_str(), key.c_str(), value);
      first = false;
    }
  }
  std::fprintf(out, "\n  }\n}\n");
  if (std::fclose(out) != 0) return 1;
  std::printf("bench_diff: wrote baseline %s\n", path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string write_path;
  double threshold = 0.10;
  double abs_floor = 0.1;
  std::vector<std::string> current_paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--write-baseline=", 17) == 0) {
      write_path = arg + 17;
    } else if (std::strncmp(arg, "--threshold=", 12) == 0) {
      threshold = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--abs-floor=", 12) == 0) {
      abs_floor = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg);
      return 2;
    } else {
      current_paths.push_back(arg);
    }
  }
  if ((baseline_path.empty() == write_path.empty()) ||
      current_paths.empty()) {
    std::fprintf(stderr,
                 "usage: bench_diff --baseline=B.json a.json [b.json ...]\n"
                 "       bench_diff --write-baseline=B.json a.json ...\n");
    return 2;
  }

  std::vector<Document> docs;
  for (const std::string& path : current_paths) {
    Document doc;
    if (!ParseDocument(path, &doc)) return 2;
    if (doc.bench.empty()) {
      std::fprintf(stderr, "bench_diff: %s has no \"bench\" field\n",
                   path.c_str());
      return 2;
    }
    docs.push_back(std::move(doc));
  }
  if (!write_path.empty()) return WriteBaseline(write_path, docs);

  Document baseline;
  if (!ParseDocument(baseline_path, &baseline)) return 2;

  int regressions = 0;
  int compared = 0;
  std::printf("%-52s %12s %12s %9s\n", "metric", "baseline", "current",
              "delta");
  for (const Document& doc : docs) {
    for (const auto& [key, current] : doc.metrics) {
      std::string full = doc.bench + "." + key;
      const double* base = FindMetric(baseline, full);
      if (base == nullptr) {
        std::printf("%-52s %12s %12.4g %9s  (new; refresh baseline)\n",
                    full.c_str(), "-", current, "-");
        continue;
      }
      ++compared;
      double delta = current - *base;
      double relative = (*base != 0) ? delta / *base : 0;
      bool worse = HigherIsBetter(key) ? delta < 0 : delta > 0;
      bool fails = worse && std::fabs(relative) > threshold &&
                   std::fabs(delta) > abs_floor;
      if (fails) ++regressions;
      std::printf("%-52s %12.4g %12.4g %+8.1f%%%s\n", full.c_str(), *base,
                  current, 100.0 * relative,
                  fails ? "  REGRESSION" : "");
    }
  }
  for (const auto& [key, value] : baseline.metrics) {
    bool found = false;
    for (const Document& doc : docs) {
      std::string prefix = doc.bench + ".";
      if (key.compare(0, prefix.size(), prefix) == 0 &&
          FindMetric(doc, key.substr(prefix.size())) != nullptr) {
        found = true;
        break;
      }
      // Baselines may hold benches not being compared this run; only
      // flag keys whose bench was supplied.
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
    }
    if (!found) {
      bool bench_supplied = false;
      for (const Document& doc : docs) {
        if (key.compare(0, doc.bench.size() + 1, doc.bench + ".") == 0) {
          bench_supplied = true;
        }
      }
      if (bench_supplied) {
        std::printf("%-52s %12.4g %12s %9s  (missing from current)\n",
                    key.c_str(), value, "-", "-");
      }
    }
  }
  std::printf("compared %d metrics, %d regression%s (threshold %.0f%%)\n",
              compared, regressions, regressions == 1 ? "" : "s",
              100.0 * threshold);
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
