// Compares benchmark JSON outputs (bench_* --json=...) against a checked-in
// baseline and fails on regressions.
//
//   bench_diff --write-baseline=BENCH_baseline.json a.json b.json ...
//       merges the per-bench files into one baseline document, each metric
//       prefixed with its bench name ("bench_parallel.pool_t1_total_s").
//
//   bench_diff --update-baseline=BENCH_baseline.json a.json b.json ...
//       rewrites the baseline in place: metrics from the supplied files
//       replace their existing entries (or are appended), every other
//       bench's entries are preserved verbatim — so one bench's numbers
//       can be refreshed without re-running the whole suite.
//
//   bench_diff --baseline=BENCH_baseline.json a.json b.json ...
//       compares; exits 1 when any metric regresses by more than the
//       threshold (default 10%, --threshold=0.15 to widen) AND by more
//       than the absolute floor (default 0.1, --abs-floor=0.5 to widen —
//       keeps near-zero second counts from tripping on noise).
//
// Bench files carry "git_sha" and "timestamp_utc" fields (see
// bench_util.h); baselines record them per bench under "provenance", and a
// failing comparison names both commits, so a regression report says which
// commit the baseline numbers came from and which produced the regression.
//
// Metrics are treated as costs (lower is better) unless the name contains
// "ratio", which flips the direction (higher is better). Metrics missing
// on either side are reported but never fail the run, so adding or
// retiring a metric does not break CI before the baseline refresh lands.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Document {
  std::string bench;          // "" in a merged baseline
  std::string git_sha;        // "" when the producer did not record it
  std::string timestamp_utc;  // ditto
  std::vector<std::pair<std::string, double>> metrics;
  // Baseline-only: bench name → "sha @ timestamp" of the run that
  // produced that bench's baseline numbers.
  std::vector<std::pair<std::string, std::string>> provenance;
};

// Minimal parser for the flat documents the benches emit: "bench",
// "git_sha" and "timestamp_utc" string fields (all optional), a "metrics"
// object of string → number, and (in baselines) a "provenance" object of
// string → string. Anything else in the file is ignored.
bool ParseDocument(const std::string& path, Document* doc) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* out) -> bool {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;  // keep escaped char
      out->push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };

  bool in_metrics = false;
  bool in_provenance = false;
  while (i < text.size()) {
    skip_ws();
    if (i >= text.size()) break;
    char c = text[i];
    if (c == '"') {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return false;
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::string value;
        if (!parse_string(&value)) return false;
        if (in_provenance) {
          doc->provenance.emplace_back(key, value);
        } else if (key == "bench") {
          doc->bench = value;
        } else if (key == "git_sha") {
          doc->git_sha = value;
        } else if (key == "timestamp_utc") {
          doc->timestamp_utc = value;
        }
      } else if (i < text.size() && text[i] == '{') {
        ++i;
        if (key == "metrics") in_metrics = true;
        if (key == "provenance") in_provenance = true;
      } else {
        char* end = nullptr;
        double value = std::strtod(text.c_str() + i, &end);
        if (end == text.c_str() + i) {
          std::fprintf(stderr, "bench_diff: bad value for \"%s\" in %s\n",
                       key.c_str(), path.c_str());
          return false;
        }
        i = static_cast<size_t>(end - text.c_str());
        if (in_metrics) doc->metrics.emplace_back(key, value);
      }
    } else if (c == '}') {
      ++i;
      in_metrics = false;
      in_provenance = false;
    } else {
      ++i;  // commas, braces opening the document, stray tokens
    }
  }
  return true;
}

const double* FindMetric(const Document& doc, const std::string& name) {
  for (const auto& [key, value] : doc.metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

const std::string* FindProvenance(const Document& doc,
                                  const std::string& bench) {
  for (const auto& [key, value] : doc.provenance) {
    if (key == bench) return &value;
  }
  return nullptr;
}

bool HigherIsBetter(const std::string& name) {
  return name.find("ratio") != std::string::npos;
}

// "sha @ timestamp" for a bench document (parts the producer omitted are
// skipped; empty when it recorded neither).
std::string DocProvenance(const Document& doc) {
  std::string out = doc.git_sha;
  if (!doc.timestamp_utc.empty()) {
    if (!out.empty()) out += " @ ";
    out += doc.timestamp_utc;
  }
  return out;
}

// Serializes a merged baseline: a "provenance" object naming the commit
// and time each bench's numbers were produced at, then the flat prefixed
// metrics map.
int SerializeBaseline(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& provenance,
    const std::vector<std::pair<std::string, double>>& metrics) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  if (!provenance.empty()) {
    std::fprintf(out, "  \"provenance\": {\n");
    for (size_t i = 0; i < provenance.size(); ++i) {
      std::fprintf(out, "    \"%s\": \"%s\"%s\n",
                   provenance[i].first.c_str(),
                   provenance[i].second.c_str(),
                   i + 1 < provenance.size() ? "," : "");
    }
    std::fprintf(out, "  },\n");
  }
  std::fprintf(out, "  \"metrics\": {\n");
  for (size_t i = 0; i < metrics.size(); ++i) {
    std::fprintf(out, "    \"%s\": %.6g%s\n", metrics[i].first.c_str(),
                 metrics[i].second, i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  }\n}\n");
  if (std::fclose(out) != 0) return 1;
  std::printf("bench_diff: wrote baseline %s\n", path.c_str());
  return 0;
}

int WriteBaseline(const std::string& path,
                  const std::vector<Document>& docs) {
  std::vector<std::pair<std::string, std::string>> provenance;
  std::vector<std::pair<std::string, double>> metrics;
  for (const Document& doc : docs) {
    std::string stamp = DocProvenance(doc);
    if (!stamp.empty()) provenance.emplace_back(doc.bench, stamp);
    for (const auto& [key, value] : doc.metrics) {
      metrics.emplace_back(doc.bench + "." + key, value);
    }
  }
  return SerializeBaseline(path, provenance, metrics);
}

// --update-baseline: existing entries for the supplied benches are
// replaced (same key in place, new keys appended after that bench's
// block), everything else is carried over untouched.
int UpdateBaseline(const std::string& path,
                   const std::vector<Document>& docs) {
  Document existing;
  if (!ParseDocument(path, &existing)) return 2;

  std::vector<std::pair<std::string, std::string>> provenance =
      existing.provenance;
  std::vector<std::pair<std::string, double>> metrics = existing.metrics;
  for (const Document& doc : docs) {
    std::string stamp = DocProvenance(doc);
    bool stamped = false;
    for (auto& [bench, value] : provenance) {
      if (bench == doc.bench) {
        value = stamp;
        stamped = true;
      }
    }
    if (!stamped && !stamp.empty()) {
      provenance.emplace_back(doc.bench, stamp);
    }

    size_t insert_at = metrics.size();  // after this bench's last entry
    std::string prefix = doc.bench + ".";
    for (size_t i = 0; i < metrics.size(); ++i) {
      if (metrics[i].first.compare(0, prefix.size(), prefix) == 0) {
        insert_at = i + 1;
      }
    }
    for (const auto& [key, value] : doc.metrics) {
      std::string full = prefix + key;
      bool replaced = false;
      for (auto& [existing_key, existing_value] : metrics) {
        if (existing_key == full) {
          existing_value = value;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        metrics.insert(metrics.begin() + insert_at, {full, value});
        ++insert_at;
      }
    }
  }
  return SerializeBaseline(path, provenance, metrics);
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string write_path;
  std::string update_path;
  double threshold = 0.10;
  double abs_floor = 0.1;
  std::vector<std::string> current_paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--write-baseline=", 17) == 0) {
      write_path = arg + 17;
    } else if (std::strncmp(arg, "--update-baseline=", 18) == 0) {
      update_path = arg + 18;
    } else if (std::strncmp(arg, "--threshold=", 12) == 0) {
      threshold = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--abs-floor=", 12) == 0) {
      abs_floor = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg);
      return 2;
    } else {
      current_paths.push_back(arg);
    }
  }
  int modes = (baseline_path.empty() ? 0 : 1) + (write_path.empty() ? 0 : 1) +
              (update_path.empty() ? 0 : 1);
  if (modes != 1 || current_paths.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_diff --baseline=B.json a.json [b.json ...]\n"
        "       bench_diff --write-baseline=B.json a.json ...\n"
        "       bench_diff --update-baseline=B.json a.json ...\n");
    return 2;
  }

  std::vector<Document> docs;
  for (const std::string& path : current_paths) {
    Document doc;
    if (!ParseDocument(path, &doc)) return 2;
    if (doc.bench.empty()) {
      std::fprintf(stderr, "bench_diff: %s has no \"bench\" field\n",
                   path.c_str());
      return 2;
    }
    docs.push_back(std::move(doc));
  }
  if (!write_path.empty()) return WriteBaseline(write_path, docs);
  if (!update_path.empty()) return UpdateBaseline(update_path, docs);

  Document baseline;
  if (!ParseDocument(baseline_path, &baseline)) return 2;

  int regressions = 0;
  int compared = 0;
  std::vector<std::string> regressed_benches;
  std::printf("%-52s %12s %12s %9s\n", "metric", "baseline", "current",
              "delta");
  for (const Document& doc : docs) {
    for (const auto& [key, current] : doc.metrics) {
      std::string full = doc.bench + "." + key;
      const double* base = FindMetric(baseline, full);
      if (base == nullptr) {
        std::printf("%-52s %12s %12.4g %9s  new (run --update-baseline)\n",
                    full.c_str(), "-", current, "-");
        continue;
      }
      ++compared;
      double delta = current - *base;
      double relative = (*base != 0) ? delta / *base : 0;
      bool worse = HigherIsBetter(key) ? delta < 0 : delta > 0;
      bool fails = worse && std::fabs(relative) > threshold &&
                   std::fabs(delta) > abs_floor;
      if (fails) {
        ++regressions;
        if (regressed_benches.empty() ||
            regressed_benches.back() != doc.bench) {
          regressed_benches.push_back(doc.bench);
        }
      }
      std::printf("%-52s %12.4g %12.4g %+8.1f%%%s\n", full.c_str(), *base,
                  current, 100.0 * relative,
                  fails ? "  REGRESSION" : "");
    }
  }
  for (const auto& [key, value] : baseline.metrics) {
    bool found = false;
    for (const Document& doc : docs) {
      std::string prefix = doc.bench + ".";
      if (key.compare(0, prefix.size(), prefix) == 0 &&
          FindMetric(doc, key.substr(prefix.size())) != nullptr) {
        found = true;
        break;
      }
      // Baselines may hold benches not being compared this run; only
      // flag keys whose bench was supplied.
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
    }
    if (!found) {
      bool bench_supplied = false;
      for (const Document& doc : docs) {
        if (key.compare(0, doc.bench.size() + 1, doc.bench + ".") == 0) {
          bench_supplied = true;
        }
      }
      if (bench_supplied) {
        std::printf("%-52s %12.4g %12s %9s  (missing from current)\n",
                    key.c_str(), value, "-", "-");
      }
    }
  }
  std::printf("compared %d metrics, %d regression%s (threshold %.0f%%)\n",
              compared, regressions, regressions == 1 ? "" : "s",
              100.0 * threshold);
  // Name the commits on both sides of every regression, so the report
  // alone says where the baseline numbers came from and which commit
  // produced the regression.
  for (const std::string& bench : regressed_benches) {
    const std::string* base_prov = FindProvenance(baseline, bench);
    std::string current_prov;
    for (const Document& doc : docs) {
      if (doc.bench == bench) current_prov = DocProvenance(doc);
    }
    std::printf("  %s: baseline from [%s], regression produced by [%s]\n",
                bench.c_str(),
                base_prov != nullptr ? base_prov->c_str() : "unrecorded",
                current_prov.empty() ? "unrecorded" : current_prov.c_str());
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
