// generate_dataset: writes a synthetic GENx-like snapshot dataset to the
// real filesystem (gsdf files a visualization tool can process, and the
// gsdf_ls / gsdf_cat tools can inspect).
//
// Usage: generate_dataset --out=DIR [--factor=F] [--snapshots=N]
//                         [--checksums]
//   --checksums   attach per-dataset CRC-32 attributes (needed for
//                 gsdf_ls/gsdf_cat --verify and any salvage recovery)
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/status.h"
#include "common/strings.h"
#include "mesh/dataset_spec.h"
#include "mesh/snapshot_writer.h"
#include "sim/env.h"

namespace godiva::tools {
namespace {

int Run(int argc, char** argv) {
  std::string out_dir;
  double factor = 0.15;
  int snapshots = 4;
  bool checksums = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--factor=", 9) == 0) {
      factor = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--snapshots=", 12) == 0) {
      snapshots = std::atoi(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--checksums") == 0) {
      checksums = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr,
                 "usage: generate_dataset --out=DIR [--factor=F] "
                 "[--snapshots=N] [--checksums]\n");
    return 2;
  }
  if (::mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "cannot create %s\n", out_dir.c_str());
    return 1;
  }

  mesh::DatasetSpec spec = factor >= 1.0
                               ? mesh::DatasetSpec::TitanIV()
                               : mesh::DatasetSpec::TitanIVScaled(factor);
  spec.num_snapshots = snapshots;
  spec.checksums = checksums;
  std::printf("generating %lld nodes / %lld tets / %d blocks × %d "
              "snapshots into %s ...\n",
              static_cast<long long>(spec.ExpectedNodes()),
              static_cast<long long>(spec.ExpectedTets()), spec.num_blocks,
              spec.num_snapshots, out_dir.c_str());
  auto dataset =
      mesh::WriteSnapshotDataset(GetPosixEnv(), spec, out_dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %d files, %s\n",
              static_cast<int>(dataset->files.size()),
              FormatBytes(dataset->total_bytes).c_str());
  return 0;
}

}  // namespace
}  // namespace godiva::tools

int main(int argc, char** argv) { return godiva::tools::Run(argc, argv); }
