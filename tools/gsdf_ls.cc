// gsdf_ls: lists the contents of gsdf files (the h5ls/ncdump -h analogue).
//
// Usage: gsdf_ls [--verify] [--salvage] <file>...
//   --verify    also check every dataset's CRC-32 (if present)
//   --salvage   when the footer/directory is corrupt, list the
//               checksum-valid datasets a salvage scan recovers (the file
//               still counts as failed: exit stays nonzero)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "gsdf/reader.h"
#include "gsdf/writer.h"
#include "sim/env.h"

namespace godiva::tools {
namespace {

Status ListFile(const std::string& path, bool verify, bool salvage) {
  Status open_error;  // non-OK when listing salvage results
  std::unique_ptr<gsdf::Reader> reader;
  Result<std::unique_ptr<gsdf::Reader>> opened =
      gsdf::Reader::Open(GetPosixEnv(), path);
  if (opened.ok()) {
    reader = std::move(*opened);
  } else if (salvage) {
    GODIVA_ASSIGN_OR_RETURN(reader,
                            gsdf::Reader::OpenSalvage(GetPosixEnv(), path));
    open_error = opened.status();
  } else {
    return opened.status();
  }
  std::printf("%s\n", path.c_str());
  if (reader->salvaged()) {
    std::printf("  SALVAGED — %s\n",
                reader->salvage_error().ToString().c_str());
  }
  if (!reader->file_attributes().empty()) {
    std::printf("  file attributes:\n");
    for (const auto& [key, value] : reader->file_attributes()) {
      std::printf("    %-20s %s\n", key.c_str(), value.c_str());
    }
  }
  std::printf("  %-32s %-8s %12s %12s %s\n", "dataset", "type", "elements",
              "bytes", verify ? "crc" : "");
  int64_t total_bytes = 0;
  for (const gsdf::DatasetInfo& info : reader->datasets()) {
    std::string crc_storage;
    const char* crc_column = "";
    if (verify) {
      if (info.FindAttribute(gsdf::kChecksumAttribute) == nullptr) {
        crc_column = "-";
      } else {
        Status status = reader->VerifyChecksum(info.name);
        if (status.ok()) {
          crc_column = "ok";
        } else {
          crc_storage = status.ToString();
          crc_column = crc_storage.c_str();
        }
      }
    }
    std::printf("  %-32s %-8s %12lld %12lld %s\n", info.name.c_str(),
                std::string(DataTypeName(info.type)).c_str(),
                static_cast<long long>(info.num_elements()),
                static_cast<long long>(info.nbytes), crc_column);
    total_bytes += info.nbytes;
  }
  std::printf("  %d datasets, %s of payload\n\n",
              static_cast<int>(reader->datasets().size()),
              FormatBytes(total_bytes).c_str());
  // A salvage listing still reports the structural failure to the caller.
  return open_error;
}

int Run(int argc, char** argv) {
  bool verify = false;
  bool salvage = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      salvage = true;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: gsdf_ls [--verify] [--salvage] <file>...\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    Status status = ListFile(path, verify, salvage);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   status.ToString().c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace godiva::tools

int main(int argc, char** argv) { return godiva::tools::Run(argc, argv); }
