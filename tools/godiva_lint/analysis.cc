// Analysis: the four checks over the extracted model, plus the DOT lock
// graph and the generated rank-table artifacts. See lint.h for the check
// definitions and DESIGN.md §12 for the architecture.
#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "godiva_lint/lint.h"

namespace godiva::lint {

namespace {

// Names that block by definition (sleeps, joins, semaphore acquires, file
// and Env I/O). Matched against the unqualified callee name: precise
// receiver typing is out of reach for a convention parser, and every one
// of these names is I/O-or-wait-shaped everywhere it appears in this
// codebase. A false positive takes a reasoned blocking_ok() waiver.
const std::set<std::string>& BlockingSeedNames() {
  static const std::set<std::string> kSet = {
      "SleepFor",       "SleepModeled",     "sleep_for",     "sleep_until",
      "Acquire",        "join",             "Append",        "Sync",
      "Close",          "Read",             "ReadDataset",   "ReadBatch",
      "ReadVerified",   "NewWritableFile",  "NewRandomAccessFile",
      "GetFileSize",    "DeleteFile",       "RenameFile",    "ListFiles",
      "FileExists",     "Open",             "OpenSalvage",   "Compute"};
  return kSet;
}

struct Graph {
  // Aggregated edges: (from decl id, to decl id) → one representative
  // site and a count.
  struct Edge {
    std::string file;
    int line = 0;
    int count = 0;
    bool ok = true;  // rank order satisfied
  };
  std::map<std::pair<std::string, std::string>, Edge> edges;
};

class Analyzer {
 public:
  Analyzer(const Model& model, const AnalysisOptions& options)
      : model_(model), options_(options) {}

  std::vector<Finding> Run() {
    Index();
    CheckRegistry();
    ComputeEntrySets();
    ComputeTransitiveAcquires();
    ComputeExitContracts();
    BuildGraphAndCheckRanks();
    CheckCycles();
    CheckGuardedBy();
    ComputeBlocking();
    CheckBlockingUnderLock();
    CheckDiscardedStatus();
    if (!options_.dot_path.empty()) EmitDot();
    if (!options_.ranks_md_path.empty()) EmitRanksMd();
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.file != b.file) return a.file < b.file;
                       return a.line < b.line;
                     });
    return findings_;
  }

 private:
  static const std::string& SiteFile(const FunctionInfo& fn) {
    return fn.body_file.empty() ? fn.file : fn.body_file;
  }

  void Add(const std::string& file, int line, const std::string& check,
           const std::string& msg) {
    findings_.push_back(Finding{file, line, check, msg});
  }

  void Index() {
    for (const MutexDecl& decl : model_.mutexes) decl_by_id_[decl.id] = &decl;
    for (const RankEntry& entry : model_.rank_registry) {
      rank_by_symbol_[entry.symbol] = &entry;
    }
    for (const FunctionInfo& fn : model_.functions) {
      fn_by_qualified_[fn.qualified()] = &fn;
      fn_by_name_[fn.name].push_back(&fn);
    }
  }

  const MutexDecl* Decl(const std::string& id) const {
    auto it = decl_by_id_.find(id);
    return it == decl_by_id_.end() ? nullptr : it->second;
  }

  // Rank of a decl: (base, width), or (-1, 1) when unranked/unknown.
  std::pair<int, int> RankOf(const MutexDecl* decl) const {
    if (decl == nullptr || decl->rank_symbol.empty()) return {-1, 1};
    auto it = rank_by_symbol_.find(decl->rank_symbol);
    if (it == rank_by_symbol_.end()) return {-1, 1};
    return {it->second->rank, it->second->width};
  }

  // Resolves a call site to a FunctionInfo: a method of the caller's
  // enclosing class chain wins; otherwise a repo-unique name matches.
  const FunctionInfo* ResolveCall(const FunctionInfo& caller,
                                  const CallSite& call) const {
    // The caller's own class chain only wins for unqualified calls —
    // `db_->stats()` must not resolve to the caller's stats().
    if (call.receiver.empty() || call.receiver == "this") {
      std::string scope = caller.cls;
      while (!scope.empty()) {
        auto it = fn_by_qualified_.find(scope + "::" + call.callee_name);
        if (it != fn_by_qualified_.end()) return it->second;
        size_t cut = scope.rfind("::");
        if (cut == std::string::npos) break;
        scope = scope.substr(0, cut);
      }
    }
    auto it = fn_by_name_.find(call.callee_name);
    if (it != fn_by_name_.end() && it->second.size() == 1) {
      return it->second[0];
    }
    return nullptr;
  }

  // ---- registry cross-check ---------------------------------------------

  void CheckRegistry() {
    std::map<std::string, int> claims;  // registry symbol → #decls
    for (const MutexDecl& decl : model_.mutexes) {
      if (decl.rank_symbol.empty()) {
        if (decl.unranked_reason.empty()) {
          Add(decl.file, decl.line, "lock-rank",
              "mutex '" + decl.id +
                  "' has no lock_rank:: symbol; rank it, or waive with "
                  "// lint: unranked(reason)");
        }
        continue;
      }
      auto it = rank_by_symbol_.find(decl.rank_symbol);
      if (it == rank_by_symbol_.end()) {
        Add(decl.file, decl.line, "lock-rank",
            "mutex '" + decl.id + "' claims rank symbol '" +
                decl.rank_symbol + "' not present in lock_rank.def");
        continue;
      }
      ++claims[decl.rank_symbol];
    }
    for (const RankEntry& entry : model_.rank_registry) {
      // Utility ranks may legitimately be claimed by decls the extractor
      // cannot see (none today); insist on coverage so the registry cannot
      // grow stale entries.
      if (claims[entry.symbol] == 0) {
        Add("src/common/lock_rank.def", 0, "lock-rank",
            "registry symbol '" + entry.symbol +
                "' (expected owner " + entry.owner +
                ") is claimed by no extracted mutex declaration");
      }
    }
    ranked_decl_count_ = 0;
    for (const MutexDecl& decl : model_.mutexes) {
      if (!decl.rank_symbol.empty()) ++ranked_decl_count_;
    }
  }

  // ---- entry sets and NO_TSA contracts ----------------------------------

  void ComputeEntrySets() {
    for (const FunctionInfo& fn : model_.functions) {
      bool declared = false;
      std::set<std::string> entry;
      for (const std::string& id : fn.requires_held) {
        if (id == "=<declared>") {
          declared = true;
          continue;
        }
        entry.insert(id);
      }
      for (const std::string& id : fn.holds_on_entry) entry.insert(id);
      entry_set_[fn.qualified()] = entry;
      if (fn.no_tsa && fn.has_body && entry.empty() && !declared) {
        Add(fn.file, fn.line, "lock-rank",
            "'" + fn.qualified() +
                "' opts out of thread-safety analysis but declares no entry "
                "lock set; add // lint: holds_on_entry(...) (or 'none')");
      }
    }
  }

  // ---- transitive acquisitions ------------------------------------------

  void ComputeTransitiveAcquires() {
    const std::string& traced = options_.trace_mutex;
    for (const FunctionInfo& fn : model_.functions) {
      std::set<std::string> direct;
      for (const AcquireSite& site : fn.acquires) {
        if (!site.mutex_id.empty()) direct.insert(site.mutex_id);
        if (!traced.empty() && site.mutex_id == traced) {
          std::cerr << "trace: " << fn.qualified() << " acquires " << traced
                    << " directly at " << SiteFile(fn) << ":" << site.line << "\n";
        }
      }
      transitive_[fn.qualified()] = direct;
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const FunctionInfo& fn : model_.functions) {
        std::set<std::string>& mine = transitive_[fn.qualified()];
        size_t before = mine.size();
        for (const CallSite& call : fn.calls) {
          const FunctionInfo* callee = ResolveCall(fn, call);
          if (callee == nullptr) continue;
          const std::set<std::string>& theirs =
              transitive_[callee->qualified()];
          if (!traced.empty() && !mine.count(traced) && theirs.count(traced)) {
            std::cerr << "trace: " << fn.qualified() << " gains " << traced
                      << " via call to " << callee->qualified() << " at "
                      << SiteFile(fn) << ":" << call.line << "\n";
          }
          mine.insert(theirs.begin(), theirs.end());
        }
        if (mine.size() != before) changed = true;
      }
    }
  }

  // ---- exit contracts (lock jugglers) -----------------------------------

  // A function whose fall-through path holds locks it did not hold on
  // entry (or released entry-held locks) must say so in its contract.
  // Computed deltas are corrected for callees with declared effects: a
  // caller of RequeueStaleUnitLocked is not itself a juggler just because
  // the extractor's local simulation cannot see the callee's release.
  void ComputeExitContracts() {
    for (const FunctionInfo& fn : model_.functions) {
      if (!fn.has_body) continue;
      std::set<std::string> holds(fn.computed_exit_holds.begin(),
                                  fn.computed_exit_holds.end());
      std::set<std::string> releases(fn.computed_exit_releases.begin(),
                                     fn.computed_exit_releases.end());
      for (const CallSite& call : fn.calls) {
        const FunctionInfo* callee = ResolveCall(fn, call);
        if (callee == nullptr) continue;
        for (const std::string& id : callee->on_exit_releases) {
          holds.erase(id);
        }
        for (const std::string& id : callee->on_exit_holds) {
          releases.erase(id);
        }
      }
      std::set<std::string> declared_holds(fn.on_exit_holds.begin(),
                                           fn.on_exit_holds.end());
      std::set<std::string> declared_rel(fn.on_exit_releases.begin(),
                                         fn.on_exit_releases.end());
      for (const std::string& id : holds) {
        if (!declared_holds.count(id)) {
          Add(fn.file, fn.line, "lock-rank",
              "'" + fn.qualified() + "' exits holding '" + id +
                  "' acquired in its body; declare "
                  "// lint: on_exit_holds(" + id + ")");
        }
      }
      for (const std::string& id : releases) {
        if (!declared_rel.count(id)) {
          Add(fn.file, fn.line, "lock-rank",
              "'" + fn.qualified() + "' releases entry-held '" + id +
                  "'; declare // lint: on_exit_releases(" + id + ")");
        }
      }
    }
  }

  // ---- the lock graph and rank order ------------------------------------

  void AddEdges(const std::vector<std::string>& held_raw,
                const std::string& to_id, const std::string& file, int line) {
    const MutexDecl* to = Decl(to_id);
    if (to == nullptr) return;
    std::set<std::string> held(held_raw.begin(), held_raw.end());
    for (const std::string& from_id : held) {
      const MutexDecl* from = Decl(from_id);
      if (from == nullptr) continue;
      auto [from_rank, from_width] = RankOf(from);
      auto [to_rank, to_width] = RankOf(to);
      (void)to_width;
      bool ok;
      if (from_rank < 0 || to_rank < 0) {
        // A waived-unranked endpoint opts out of the order (mirrors the
        // runtime checker's kUnranked behaviour); registry findings have
        // already flagged unwaived ones.
        ok = true;
      } else if (from_id == to_id) {
        // Self-edge: legal only for a ranked range (shard → shard, with
        // the per-index order enforced at run time).
        ok = from_width > 1;
      } else {
        ok = to_rank > from_rank + from_width - 1;
      }
      auto key = std::make_pair(from_id, to_id);
      auto [it, inserted] = graph_.edges.emplace(key, Graph::Edge{});
      if (inserted) {
        it->second.file = file;
        it->second.line = line;
      }
      ++it->second.count;
      it->second.ok = it->second.ok && ok;
      if (!ok) {
        Add(file, line, "lock-rank",
            "acquiring '" + to_id + "' (rank " + RankLabel(to) +
                ") while holding '" + from_id + "' (rank " + RankLabel(from) +
                ") violates the lock order");
      }
    }
  }

  std::string RankLabel(const MutexDecl* decl) const {
    auto [rank, width] = RankOf(decl);
    if (rank < 0) return "unranked";
    std::string out = decl->rank_symbol + "=" + std::to_string(rank);
    if (width > 1) out += "..+" + std::to_string(width - 1);
    return out;
  }

  void BuildGraphAndCheckRanks() {
    for (const FunctionInfo& fn : model_.functions) {
      // Internal edges: each acquisition against the set held before it.
      for (const AcquireSite& site : fn.acquires) {
        AddEdges(site.held, site.mutex_id, SiteFile(fn), site.line);
      }
      // Cross edges: extra locks held at a call (beyond the callee's
      // declared entry set) against everything the callee may acquire.
      for (const CallSite& call : fn.calls) {
        const FunctionInfo* callee = ResolveCall(fn, call);
        if (callee == nullptr) continue;
        const std::set<std::string>& entry = entry_set_.at(callee->qualified());
        const std::set<std::string>& acquired =
            transitive_.at(callee->qualified());
        std::vector<std::string> extra;
        for (const std::string& id : call.held) {
          if (!entry.count(id)) extra.push_back(id);
        }
        for (const std::string& to_id : acquired) {
          // Locks the caller itself holds are re-acquisition questions for
          // the callee's own internal edges, except the legal range
          // self-edge which AddEdges sorts out.
          AddEdges(extra, to_id, SiteFile(fn), call.line);
        }
      }
    }
  }

  void CheckCycles() {
    // Rank order already forbids cycles among ranked nodes; this catches
    // cycles that sneak through waived-unranked nodes. Legal self-edges
    // are skipped.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, edge] : graph_.edges) {
      (void)edge;
      if (key.first == key.second) continue;
      adj[key.first].push_back(key.second);
    }
    std::set<std::string> done, path;
    std::vector<std::string> order;
    bool reported = false;
    std::function<void(const std::string&)> dfs = [&](const std::string& v) {
      if (reported || done.count(v)) return;
      if (path.count(v)) {
        std::string cyc;
        bool in = false;
        for (const std::string& p : order) {
          if (p == v) in = true;
          if (in) cyc += p + " -> ";
        }
        cyc += v;
        const MutexDecl* decl = Decl(v);
        Add(decl ? decl->file : "", decl ? decl->line : 0, "lock-rank",
            "lock graph cycle: " + cyc);
        reported = true;
        return;
      }
      path.insert(v);
      order.push_back(v);
      for (const std::string& w : adj[v]) dfs(w);
      order.pop_back();
      path.erase(v);
      done.insert(v);
    };
    for (const auto& [v, outs] : adj) {
      (void)outs;
      dfs(v);
    }
  }

  // ---- guarded-by --------------------------------------------------------

  void CheckGuardedBy() {
    for (const FieldDecl& field : model_.fields) {
      if (!model_.mutex_owning_classes.count(field.cls)) continue;
      if (field.guarded || field.is_atomic || field.is_const ||
          field.is_static || field.is_sync_type) {
        continue;
      }
      if (!field.unguarded_reason.empty()) continue;
      Add(field.file, field.line, "guarded-by",
          "mutable member '" + field.cls + "::" + field.name +
              "' of a mutex-owning class is neither GUARDED_BY, atomic, "
              "const, nor waived with // lint: unguarded(reason)");
    }
  }

  // ---- blocking-under-shard-lock ----------------------------------------

  bool RankForbidsBlocking(const std::string& decl_id) const {
    const MutexDecl* decl = Decl(decl_id);
    if (decl == nullptr) return false;
    for (const std::string& symbol : options_.no_blocking_ranks) {
      if (decl->rank_symbol == symbol) return true;
    }
    return false;
  }

  void ComputeBlocking() {
    for (const FunctionInfo& fn : model_.functions) {
      bool blocks = fn.blocking_by_fiat || !fn.waits.empty();
      for (const CallSite& call : fn.calls) {
        if (BlockingSeedNames().count(call.callee_name)) blocks = true;
      }
      if (blocks) blocking_.insert(fn.qualified());
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const FunctionInfo& fn : model_.functions) {
        if (blocking_.count(fn.qualified())) continue;
        for (const CallSite& call : fn.calls) {
          const FunctionInfo* callee = ResolveCall(fn, call);
          if (callee != nullptr && callee->has_body &&
              blocking_.count(callee->qualified())) {
            blocking_.insert(fn.qualified());
            changed = true;
            break;
          }
        }
      }
    }
  }

  void CheckBlockingUnderLock() {
    for (const FunctionInfo& fn : model_.functions) {
      for (const CallSite& call : fn.calls) {
        bool seed = BlockingSeedNames().count(call.callee_name) > 0;
        const FunctionInfo* callee = ResolveCall(fn, call);
        bool callee_blocks =
            callee != nullptr &&
            (callee->blocking_by_fiat ||
             (callee->has_body && blocking_.count(callee->qualified())));
        if (!seed && !callee_blocks) continue;
        // Locks in the callee's declared entry set are its own problem:
        // its body analysis carries them through every internal site with
        // full knowledge of where they are released before any wait
        // (LoadInlineAndLock drops s.mu before the inline read; a CondVar
        // wait releases its mutex). Only extra locks the caller smuggles
        // in can escape that analysis.
        std::set<std::string> held_set(call.held.begin(), call.held.end());
        if (callee != nullptr) {
          for (const std::string& id : entry_set_.at(callee->qualified())) {
            held_set.erase(id);
          }
        }
        for (const std::string& id : held_set) {
          if (!RankForbidsBlocking(id)) continue;
          if (!call.blocking_reason.empty()) break;
          Add(SiteFile(fn), call.line, "blocking",
              "call to blocking '" + call.callee_name + "' while holding '" +
                  id + "' (a no-blocking rank); restructure, or waive with "
                  "// lint: blocking_ok(reason)");
        }
      }
      for (const WaitSite& wait : fn.waits) {
        for (const std::string& id : std::set<std::string>(wait.held.begin(),
                                                           wait.held.end())) {
          if (id == wait.released_mutex_id) continue;  // released to wait
          if (!RankForbidsBlocking(id)) continue;
          if (!wait.blocking_reason.empty()) break;
          Add(SiteFile(fn), wait.line, "blocking",
              "condition wait while holding '" + id +
                  "' (a no-blocking rank; only '" + wait.released_mutex_id +
                  "' is released for the wait)");
        }
      }
    }
  }

  // ---- discarded status --------------------------------------------------

  void CheckDiscardedStatus() {
    // Name → "every declaration with this name returns Status/Result".
    // The fallback for unresolvable calls (virtual dispatch through an
    // Env*): a name is only status-returning if it is unambiguously so —
    // `Release` (Semaphore: void, Record pool: Status) stays out, `Read`
    // (Status in every Env and file class) stays in.
    std::map<std::string, std::pair<int, int>> by_name;  // name → (status, all)
    for (const FunctionInfo& fn : model_.functions) {
      auto& [status, all] = by_name[fn.name];
      if (fn.returns_status) ++status;
      ++all;
    }
    for (const FunctionInfo& fn : model_.functions) {
      for (const CallSite& call : fn.calls) {
        if (!call.is_discard_stmt) continue;
        const FunctionInfo* callee = ResolveCall(fn, call);
        bool returns_status;
        if (callee != nullptr) {
          returns_status = callee->returns_status;
        } else {
          auto it = by_name.find(call.callee_name);
          returns_status = it != by_name.end() &&
                           it->second.first == it->second.second;
        }
        if (!returns_status) continue;
        if (!call.discard_reason.empty()) continue;
        std::string shape = call.is_void_cast ? "(void)-cast" : "statement";
        Add(SiteFile(fn), call.line, "discarded-status",
            shape + " discard of Status-returning '" + call.callee_name +
                "'; handle the Status, or waive with "
                "// lint: discard_ok(reason)");
      }
    }
  }

  // ---- artifacts ---------------------------------------------------------

  void EmitDot() {
    std::ofstream out(options_.dot_path);
    out << "// Generated by godiva_lint: the static may-hold-while-acquiring\n"
        << "// graph. Nodes are mutex declarations labelled with their\n"
        << "// lock_rank.def rank; red edges violate the order.\n"
        << "digraph godiva_locks {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";
    // Stable node order: by rank, then id.
    std::vector<const MutexDecl*> decls;
    for (const MutexDecl& decl : model_.mutexes) decls.push_back(&decl);
    std::sort(decls.begin(), decls.end(),
              [&](const MutexDecl* a, const MutexDecl* b) {
                auto ra = RankOf(a), rb = RankOf(b);
                if (ra.first != rb.first) return ra.first < rb.first;
                return a->id < b->id;
              });
    for (const MutexDecl* decl : decls) {
      out << "  \"" << decl->id << "\" [label=\"" << decl->id << "\\n"
          << RankLabel(decl) << "\"";
      if (RankOf(decl).first < 0) out << ", style=dashed";
      out << "];\n";
    }
    for (const auto& [key, edge] : graph_.edges) {
      out << "  \"" << key.first << "\" -> \"" << key.second
          << "\" [label=\"x" << edge.count << "\"";
      if (!edge.ok) out << ", color=red, penwidth=2";
      out << "];\n";
    }
    out << "}\n";
  }

  void EmitRanksMd() {
    std::ofstream out(options_.ranks_md_path);
    out << "# GODIVA lock ranks\n\n"
        << "Generated by godiva_lint from `src/common/lock_rank.def` — do\n"
        << "not edit. DESIGN.md §6 points here.\n\n"
        << "| symbol | rank | width | owner |\n"
        << "|---|---|---|---|\n";
    std::vector<RankEntry> sorted = model_.rank_registry;
    std::sort(sorted.begin(), sorted.end(),
              [](const RankEntry& a, const RankEntry& b) {
                return a.rank < b.rank;
              });
    for (const RankEntry& entry : sorted) {
      out << "| `" << entry.symbol << "` | " << entry.rank << " | "
          << entry.width << " | `" << entry.owner << "` |\n";
    }
    out << "\nGraph: " << graph_.edges.size() << " distinct edges over "
        << model_.mutexes.size() << " mutex declarations ("
        << ranked_decl_count_ << " ranked, "
        << model_.rank_registry.size() << " registry entries).\n";
  }

  const Model& model_;
  const AnalysisOptions& options_;
  std::vector<Finding> findings_;
  std::map<std::string, const MutexDecl*> decl_by_id_;
  std::map<std::string, const RankEntry*> rank_by_symbol_;
  std::map<std::string, const FunctionInfo*> fn_by_qualified_;
  std::map<std::string, std::vector<const FunctionInfo*>> fn_by_name_;
  std::map<std::string, std::set<std::string>> entry_set_;
  std::map<std::string, std::set<std::string>> transitive_;
  std::set<std::string> blocking_;
  Graph graph_;
  int ranked_decl_count_ = 0;
};

}  // namespace

std::vector<Finding> Analyze(const Model& model,
                             const AnalysisOptions& options) {
  return Analyzer(model, options).Run();
}

}  // namespace godiva::lint
