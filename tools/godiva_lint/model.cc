// Extraction: turns lexed token streams into the lint model (mutex
// declarations, fields, functions with acquisition/call/wait sites). This
// is a convention parser, not a C++ frontend — see lint.h for exactly
// which idioms it understands; the fixture corpus in tests/lint/ pins the
// behaviour down.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "godiva_lint/lint.h"

namespace godiva::lint {

namespace {

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",      "while",           "switch",      "return",
      "sizeof",   "alignof",  "static_cast",     "dynamic_cast", "catch",
      "const_cast", "reinterpret_cast", "static_assert", "assert",
      "decltype", "new",      "delete",          "throw",       "co_await",
      "co_return", "defined", "noexcept"};
  return kSet;
}

const std::set<std::string>& SyncTypes() {
  static const std::set<std::string> kSet = {
      "Mutex", "CondVar", "Semaphore", "SemaphoreGuard", "TimeAccumulator",
      "MutexLock"};
  return kSet;
}

bool IsAnnotationMacro(const std::string& t) {
  return t == "REQUIRES" || t == "EXCLUDES" || t == "ACQUIRE" ||
         t == "RELEASE" || t == "TRY_ACQUIRE" || t == "ASSERT_CAPABILITY" ||
         t == "GUARDED_BY" || t == "PT_GUARDED_BY" || t == "ACQUIRED_BEFORE" ||
         t == "ACQUIRED_AFTER" || t == "RETURN_CAPABILITY" ||
         t == "CAPABILITY" || t == "SCOPED_CAPABILITY" ||
         t == "NO_THREAD_SAFETY_ANALYSIS";
}

// --- lint: comment annotations -------------------------------------------

// All "lint: kind(arg)" annotations found in `block`.
std::vector<std::pair<std::string, std::string>> ParseLintAnnotations(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while ((pos = text.find("lint:", pos)) != std::string::npos) {
    size_t p = pos + 5;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    size_t kind_start = p;
    while (p < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[p])) ||
            text[p] == '_'))
      ++p;
    std::string kind = text.substr(kind_start, p - kind_start);
    std::string arg;
    if (p < text.size() && text[p] == '(') {
      int depth = 0;
      size_t arg_start = p + 1;
      for (; p < text.size(); ++p) {
        if (text[p] == '(') ++depth;
        if (text[p] == ')') {
          --depth;
          if (depth == 0) break;
        }
      }
      arg = text.substr(arg_start, p - arg_start);
    }
    if (!kind.empty()) out.emplace_back(kind, arg);
    pos = p;
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t a = 0, b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

// The final member name of a receiver chain: "s.mu" → "mu".
std::string FinalNameOf(const std::string& expr) {
  size_t pos = expr.find_last_of(".>:");
  return pos == std::string::npos ? expr : expr.substr(pos + 1);
}

// Whether two mutex refs name the same member. Refs reach the held set in
// three spellings — raw body expressions ("Gbo|s.mu"), annotation ids
// ("=Gbo::Shard::mu") and REQUIRES refs ("Gbo|mu_") — so an Unlock or a
// callee release contract must match across spellings. Final-member-name
// equality is the convention this codebase upholds: no two mutexes in
// scope at once share a member name.
std::string MutexRefTail(const std::string& ref) {
  size_t pos = ref.find_last_of(".>:|");
  return pos == std::string::npos ? ref : ref.substr(pos + 1);
}
bool SameMutexRef(const std::string& a, const std::string& b) {
  return a == b || MutexRefTail(a) == MutexRefTail(b);
}

// Removes (once) the newest entry matching `ref` from `list`.
bool EraseMutexRef(std::vector<std::string>* list, const std::string& ref) {
  for (size_t k = list->size(); k > 0; --k) {
    if (SameMutexRef((*list)[k - 1], ref)) {
      list->erase(list->begin() + static_cast<long>(k) - 1);
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitArgs(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!Trim(cur).empty()) out.push_back(Trim(cur));
  return out;
}

// The extractor for one file. Raw (unresolved) mutex references are stored
// as "cls|expr"; ResolveMutexRefs rewrites them into MutexDecl ids.
class Extractor {
 public:
  Extractor(const LexedFile& lexed, Model* model, std::vector<Finding>* diags)
      : f_(lexed), model_(model), diags_(diags) {}

  void Run() { ParseDeclContext("", f_.tokens.size()); }

 private:
  const Token& Tok(size_t i) const {
    return i < f_.tokens.size() ? f_.tokens[i] : f_.tokens.back();
  }
  bool Is(size_t i, const char* text) const { return Tok(i).text == text; }

  void Diag(int line, const std::string& check, const std::string& msg) {
    diags_->push_back(Finding{f_.path, line, check, msg});
  }

  // Annotations attached to `line`: same line or a comment block ending
  // within the 4 lines above it.
  std::map<std::string, std::string> LintAnnotationsAt(int line) const {
    std::map<std::string, std::string> out;
    for (const CommentBlock& block : f_.comments) {
      if (block.last_line > line) break;
      if (block.last_line + 4 < line) continue;
      for (auto& [kind, arg] : ParseLintAnnotations(block.text)) {
        out[kind] = arg;
      }
    }
    return out;
  }

  // Skips a balanced (), {}, [] or <> group starting at `i` (which must be
  // on the opener); returns the index just past the closer.
  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    int depth = 0;
    while (i < f_.tokens.size()) {
      if (Tok(i).text == open) ++depth;
      if (Tok(i).text == close) {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  // ---- declaration context (namespace or class body) ---------------------

  // Parses until the `}` closing the context (or EOF). `cls` is the
  // qualified enclosing class ("" at namespace scope).
  void ParseDeclContext(const std::string& cls, size_t end_hint) {
    (void)end_hint;
    while (idx_ < f_.tokens.size() && Tok(idx_).kind != Token::kEof) {
      const Token& t = Tok(idx_);
      if (t.text == "}") {
        ++idx_;
        // Consume an optional `;` (class bodies).
        if (Is(idx_, ";")) ++idx_;
        return;
      }
      if (t.text == "namespace") {
        // namespace foo { ... } or anonymous.
        ++idx_;
        while (idx_ < f_.tokens.size() && !Is(idx_, "{") && !Is(idx_, ";"))
          ++idx_;
        if (Is(idx_, "{")) {
          ++idx_;
          ParseDeclContext(cls, 0);
        } else {
          ++idx_;
        }
        continue;
      }
      if (t.text == "template") {
        ++idx_;
        if (Is(idx_, "<")) idx_ = SkipBalanced(idx_, "<", ">");
        continue;
      }
      if (t.text == "enum") {
        while (idx_ < f_.tokens.size() && !Is(idx_, "{") && !Is(idx_, ";"))
          ++idx_;
        if (Is(idx_, "{")) idx_ = SkipBalanced(idx_, "{", "}");
        if (Is(idx_, ";")) ++idx_;
        continue;
      }
      if (t.text == "using" || t.text == "typedef" || t.text == "friend") {
        while (idx_ < f_.tokens.size() && !Is(idx_, ";")) {
          if (Is(idx_, "{")) {
            idx_ = SkipBalanced(idx_, "{", "}");
            continue;
          }
          ++idx_;
        }
        ++idx_;
        continue;
      }
      if (t.text == "public" || t.text == "private" || t.text == "protected") {
        idx_ += 2;  // label + ':'
        continue;
      }
      if (t.text == "class" || t.text == "struct") {
        size_t j = idx_ + 1;
        // Skip attributes like [[nodiscard]] and annotation macros.
        while (Is(j, "[")) j = SkipBalanced(j, "[", "]");
        while (Tok(j).kind == Token::kIdent && IsAnnotationMacro(Tok(j).text)) {
          ++j;
          if (Is(j, "(")) j = SkipBalanced(j, "(", ")");
        }
        std::string name;
        if (Tok(j).kind == Token::kIdent) {
          name = Tok(j).text;
          ++j;
        }
        // Forward declaration?
        size_t k = j;
        while (k < f_.tokens.size() && !Is(k, "{") && !Is(k, ";") &&
               !Is(k, "(")) {
          ++k;
        }
        if (Is(k, ";")) {
          idx_ = k + 1;
          continue;
        }
        if (Is(k, "(")) {
          // `struct Foo bar(..)` style — treat as a plain declaration.
          ParseDeclaration(cls);
          continue;
        }
        idx_ = k + 1;  // past '{'
        std::string nested = cls.empty() ? name : cls + "::" + name;
        ParseDeclContext(nested, 0);
        continue;
      }
      if (t.text == ";" || t.text == "{") {
        if (t.text == "{") {
          idx_ = SkipBalanced(idx_, "{", "}");
        } else {
          ++idx_;
        }
        continue;
      }
      ParseDeclaration(cls);
    }
  }

  // Parses one declaration starting at idx_: a member, a global variable,
  // a function declaration, or a function definition (with body).
  void ParseDeclaration(const std::string& cls) {
    const size_t start = idx_;
    const int decl_line = Tok(start).line;
    // Scan to the ';' or body '{' at depth 0, remembering structure.
    std::vector<size_t> toks;  // indexes of the decl run
    size_t first_paren = 0;    // index of first depth-0 '(' (0 = none)
    size_t close_paren = 0;
    bool seen_assign = false;
    size_t i = idx_;
    int angle = 0;
    while (i < f_.tokens.size()) {
      const std::string& x = Tok(i).text;
      if (x == "<") ++angle;
      if (x == ">" && angle > 0) --angle;
      if (x == "(" && first_paren == 0 && angle == 0) {
        first_paren = i;
        i = SkipBalanced(i, "(", ")");
        close_paren = i - 1;
        continue;
      }
      if (x == "(") {
        i = SkipBalanced(i, "(", ")");
        continue;
      }
      // `=` before any parameter list marks an initialized variable;
      // after one it is `= 0` / `= default` / `= delete` on a function.
      if (x == "=" && angle == 0 && first_paren == 0) seen_assign = true;
      if (x == ";" && angle == 0) break;
      if (x == "{" && angle == 0) {
        // Brace init (member) or function body or ctor init list item.
        if (first_paren == 0) {
          // Member brace-init: `Mutex mu_{...};` — consume and continue to ';'.
          i = SkipBalanced(i, "{", "}");
          continue;
        }
        break;  // function body (or ctor init-list brace, handled below)
      }
      if (x == ":" && angle == 0 && first_paren != 0 && i > close_paren &&
          !seen_assign) {
        break;  // ctor init list
      }
      ++i;
    }
    const size_t decl_end = i;  // at ';', '{', ':' or EOF

    if (first_paren == 0 || seen_assign) {
      // No parameter list (or an initialized variable): member / variable.
      ParseMemberOrVariable(cls, start, decl_end, decl_line);
      if (Is(decl_end, "{")) {
        idx_ = SkipBalanced(decl_end, "{", "}");
      } else {
        idx_ = decl_end + 1;
      }
      return;
    }

    // `Mutex name(lock_rank::kX, "...");` — a variable with paren init.
    if (Tok(start).text == "Mutex" ||
        (Tok(start).text == "mutable" && Tok(start + 1).text == "Mutex")) {
      ParseMutexVariable(cls, start, first_paren, close_paren, decl_line);
      idx_ = decl_end + 1;
      return;
    }

    // Function-ish. Name = identifier just before the first '('; handles
    // `~Gbo` (destructor) and `Class::Name` qualification.
    size_t name_idx = first_paren - 1;
    if (Tok(name_idx).kind != Token::kIdent) {
      // operator(), operator==, conversion operators, or an expression
      // statement that leaked here — skip to the end of the declaration.
      idx_ = decl_end;
      if (Is(idx_, "{") || Is(idx_, ":")) SkipFunctionTail();
      else ++idx_;
      return;
    }
    std::string name = Tok(name_idx).text;
    std::string owner = cls;
    size_t qual_end = name_idx;
    if (name_idx >= 1 && Is(name_idx - 1, "~")) {
      name = "~" + name;
      qual_end = name_idx - 1;
    }
    // Qualification chain: A::B::name.
    std::vector<std::string> quals;
    size_t q = qual_end;
    while (q >= 2 && Is(q - 1, "::") && Tok(q - 2).kind == Token::kIdent) {
      quals.insert(quals.begin(), Tok(q - 2).text);
      q -= 2;
    }
    if (!quals.empty()) {
      std::string joined;
      for (const std::string& part : quals) {
        joined = joined.empty() ? part : joined + "::" + part;
      }
      owner = cls.empty() ? joined : cls + "::" + joined;
    }
    if (name == "operator") {
      idx_ = decl_end;
      if (Is(idx_, "{") || Is(idx_, ":")) SkipFunctionTail();
      else ++idx_;
      return;
    }

    FunctionInfo* fn = LookupOrCreateFunction(owner, name, decl_line);

    // Return type: does the decl prefix contain Status / Result?
    for (size_t r = start; r < q; ++r) {
      if (Tok(r).text == "Status" || Tok(r).text == "Result") {
        fn->returns_status = true;
      }
    }
    if (fn->returns_status) model_->status_fn_names.insert(name);

    // Parameter names (so REQUIRES(mu) on a parameter can be skipped).
    std::set<std::string> params;
    {
      size_t p = first_paren + 1;
      std::vector<std::string> run;
      int depth = 1;
      while (p < f_.tokens.size() && depth > 0) {
        const std::string& x = Tok(p).text;
        if (x == "(") ++depth;
        if (x == ")") --depth;
        if (depth == 0 || (x == "," && depth == 1)) {
          if (!run.empty()) params.insert(run.back());
          run.clear();
        } else if (Tok(p).kind == Token::kIdent) {
          run.push_back(x);
        }
        ++p;
      }
    }

    // Trailing annotations between ')' and the decl end.
    for (size_t a = close_paren + 1; a < decl_end; ++a) {
      const std::string& x = Tok(a).text;
      if (x == "NO_THREAD_SAFETY_ANALYSIS") fn->no_tsa = true;
      if (x == "REQUIRES" && Is(a + 1, "(")) {
        size_t e = SkipBalanced(a + 1, "(", ")");
        std::string args;
        for (size_t r = a + 2; r + 1 < e; ++r) {
          args += Tok(r).text;
          args += " ";
        }
        for (const std::string& ref : SplitArgs(args)) {
          std::string compact;
          for (char c : ref) {
            if (!std::isspace(static_cast<unsigned char>(c))) compact += c;
          }
          if (params.count(compact) || compact == "this") continue;
          // A declaration and its definition may both carry REQUIRES;
          // record each mutex once.
          std::string req = owner + "|" + compact;
          if (std::find(fn->requires_held.begin(), fn->requires_held.end(),
                        req) == fn->requires_held.end()) {
            fn->requires_held.push_back(req);
          }
        }
        a = e - 1;
      }
    }

    // Comment annotations on the declaration.
    auto ann = LintAnnotationsAt(decl_line);
    if (auto it = ann.find("holds_on_entry"); it != ann.end()) {
      for (const std::string& ref : SplitArgs(it->second)) {
        if (ref != "none") fn->holds_on_entry.push_back("=" + ref);
      }
      if (fn->holds_on_entry.empty() && it->second != "none") {
        Diag(decl_line, "lint-usage",
             "holds_on_entry() needs mutex ids or 'none'");
      }
      fn->no_tsa = fn->no_tsa;  // annotation satisfies the NO_TSA check
      fn->requires_held.push_back("=<declared>");  // marker: entry declared
    }
    if (auto it = ann.find("blocking"); it != ann.end()) {
      if (Trim(it->second).empty()) {
        Diag(decl_line, "lint-usage", "blocking() waiver needs a reason");
      }
      fn->blocking_by_fiat = true;
      fn->blocking_fiat_reason = it->second;
    }
    if (auto it = ann.find("on_exit_holds"); it != ann.end()) {
      for (const std::string& ref : SplitArgs(it->second))
        fn->on_exit_holds.push_back("=" + ref);
    }
    if (auto it = ann.find("on_exit_releases"); it != ann.end()) {
      for (const std::string& ref : SplitArgs(it->second))
        fn->on_exit_releases.push_back("=" + ref);
    }

    idx_ = decl_end;
    if (Is(idx_, ";")) {
      ++idx_;
      return;
    }
    // Ctor init list: scan items for lock_rank bindings until the body '{'.
    if (Is(idx_, ":")) {
      ++idx_;
      ParseCtorInitList(owner);
    }
    if (Is(idx_, "{")) {
      fn->has_body = true;
      fn->body_file = f_.path;
      ParseFunctionBody(fn, owner);
    } else {
      ++idx_;
    }
  }

  void SkipFunctionTail() {
    // At ':' (init list) or '{' — skip to past the body.
    if (Is(idx_, ":")) {
      while (idx_ < f_.tokens.size() && !Is(idx_, "{")) {
        if (Is(idx_, "(")) {
          idx_ = SkipBalanced(idx_, "(", ")");
          continue;
        }
        ++idx_;
      }
    }
    if (Is(idx_, "{")) idx_ = SkipBalanced(idx_, "{", "}");
  }

  // Ctor init list: `member(args), member{args}, ... {`. Records
  // `lock_rank::kX` bindings for mutex members.
  void ParseCtorInitList(const std::string& cls) {
    while (idx_ < f_.tokens.size()) {
      if (Tok(idx_).kind == Token::kIdent && (Is(idx_ + 1, "(") || Is(idx_ + 1, "{"))) {
        std::string member = Tok(idx_).text;
        const char* open = Is(idx_ + 1, "(") ? "(" : "{";
        const char* close = Is(idx_ + 1, "(") ? ")" : "}";
        size_t item_end = SkipBalanced(idx_ + 1, open, close);
        for (size_t r = idx_ + 2; r + 1 < item_end; ++r) {
          if (Tok(r).text == "lock_rank" && Is(r + 1, "::")) {
            model_->ctor_rank_bindings[cls + "::" + member] = Tok(r + 2).text;
          }
        }
        idx_ = item_end;
        if (Is(idx_, ",")) {
          ++idx_;
          continue;
        }
        return;  // next token should be the body '{'
      }
      if (Is(idx_, "{")) return;
      ++idx_;
    }
  }

  void ParseMutexVariable(const std::string& cls, size_t start,
                          size_t first_paren, size_t close_paren,
                          int decl_line) {
    size_t name_idx = first_paren - 1;
    if (Tok(name_idx).kind != Token::kIdent) return;
    // `Mutex(...)` with no variable name is the class's own constructor,
    // not a declaration.
    if (name_idx == start || Tok(name_idx).text == "Mutex") return;
    MutexDecl decl;
    decl.cls = cls;
    decl.member = Tok(name_idx).text;
    decl.id = cls.empty() ? decl.member : cls + "::" + decl.member;
    decl.file = f_.path;
    decl.line = decl_line;
    for (size_t r = first_paren; r < close_paren; ++r) {
      if (Tok(r).text == "lock_rank" && Is(r + 1, "::")) {
        decl.rank_symbol = Tok(r + 2).text;
      }
    }
    ApplyMutexDeclAnnotations(&decl, decl_line);
    model_->mutexes.push_back(decl);
    if (!cls.empty()) model_->mutex_owning_classes.insert(cls);
    (void)start;
  }

  void ApplyMutexDeclAnnotations(MutexDecl* decl, int line) {
    auto ann = LintAnnotationsAt(line);
    if (auto it = ann.find("rank"); it != ann.end()) {
      decl->rank_symbol = Trim(it->second);
    }
    if (auto it = ann.find("unranked"); it != ann.end()) {
      decl->unranked_reason = Trim(it->second);
      if (decl->unranked_reason.empty()) {
        Diag(line, "lint-usage", "unranked() waiver needs a reason");
      }
    }
  }

  // A member or namespace-scope variable declaration (no param list).
  void ParseMemberOrVariable(const std::string& cls, size_t start,
                             size_t decl_end, int decl_line) {
    if (cls.empty()) return;  // namespace-scope non-mutex variables: ignore
    bool is_static = false, is_const = false, guarded = false;
    bool is_atomic = false, is_pointer = false;
    std::string first_type_token;
    size_t guard_idx = 0;
    for (size_t r = start; r < decl_end; ++r) {
      const Token& t = Tok(r);
      if (t.text == "*") is_pointer = true;
      if (t.text == "static") is_static = true;
      if (t.text == "const" || t.text == "constexpr") is_const = true;
      if (t.text == "atomic") is_atomic = true;
      if ((t.text == "GUARDED_BY" || t.text == "PT_GUARDED_BY") &&
          Is(r + 1, "(")) {
        guarded = true;
        guard_idx = r;
        r = SkipBalanced(r + 1, "(", ")") - 1;
        continue;
      }
      if (first_type_token.empty() && t.kind == Token::kIdent &&
          t.text != "mutable" && t.text != "static" && t.text != "const" &&
          t.text != "constexpr" && t.text != "inline" &&
          t.text != "volatile") {
        first_type_token = t.text;
      }
    }
    // Name: the identifier just before GUARDED_BY / '=' / '{' / end.
    size_t name_idx = 0;
    size_t stop = guarded ? guard_idx : decl_end;
    for (size_t r = start; r < stop; ++r) {
      if (Tok(r).text == "=" || Tok(r).text == "{") break;
      if (Tok(r).kind == Token::kIdent && !IsAnnotationMacro(Tok(r).text)) {
        name_idx = r;
      }
    }
    if (name_idx == 0) return;
    std::string name = Tok(name_idx).text;
    // Only a by-value godiva::Mutex member is a declaration; a Mutex*
    // (MutexLock's handle) refers to one declared elsewhere.
    if (first_type_token == "Mutex" && !is_pointer) {
      MutexDecl decl;
      decl.cls = cls;
      decl.member = name;
      decl.id = cls + "::" + name;
      decl.file = f_.path;
      decl.line = decl_line;
      for (size_t r = start; r < decl_end; ++r) {
        if (Tok(r).text == "lock_rank" && Is(r + 1, "::")) {
          decl.rank_symbol = Tok(r + 2).text;
        }
      }
      ApplyMutexDeclAnnotations(&decl, decl_line);
      model_->mutexes.push_back(decl);
      model_->mutex_owning_classes.insert(cls);
      return;
    }
    FieldDecl field;
    field.cls = cls;
    field.name = name;
    field.type_text = first_type_token;
    field.guarded = guarded;
    field.is_atomic = is_atomic;
    field.is_const = is_const;
    field.is_static = is_static;
    field.is_sync_type = SyncTypes().count(first_type_token) > 0;
    field.file = f_.path;
    field.line = decl_line;
    auto ann = LintAnnotationsAt(decl_line);
    if (auto it = ann.find("unguarded"); it != ann.end()) {
      field.unguarded_reason = Trim(it->second);
      if (field.unguarded_reason.empty()) {
        Diag(decl_line, "lint-usage", "unguarded() waiver needs a reason");
      }
    }
    model_->fields.push_back(field);
  }

  FunctionInfo* LookupOrCreateFunction(const std::string& cls,
                                       const std::string& name, int line) {
    if (!cls.empty()) {
      std::string key = cls + "::" + name;
      auto it = model_->method_index.find(key);
      if (it != model_->method_index.end()) {
        return &model_->functions[it->second];
      }
      model_->method_index[key] = model_->functions.size();
    }
    FunctionInfo fn;
    fn.cls = cls;
    fn.name = name;
    fn.file = f_.path;
    fn.line = line;
    model_->functions.push_back(fn);
    return &model_->functions.back();
  }

  // ---- function bodies ----------------------------------------------------

  struct Block {
    std::vector<std::string> scoped;         // MutexLock refs in this block
    std::vector<std::string> manual_snapshot;  // manual set at block entry
    bool ends_with_exit = false;
  };

  // Reads the receiver expression that ends at token `i` (exclusive):
  // walks back over `ident`, `.`, `->`, `::`, `]`/`[`, `this`. Returns the
  // raw textual expression.
  std::string ReceiverEndingAt(size_t i) const {
    std::string out;
    size_t j = i;
    int bracket = 0;
    while (j > 0) {
      const Token& t = Tok(j - 1);
      if (t.text == "]") {
        ++bracket;
        --j;
        continue;
      }
      if (t.text == "[") {
        --bracket;
        --j;
        continue;
      }
      if (bracket > 0) {
        --j;
        continue;
      }
      if (t.kind == Token::kIdent || t.text == "." || t.text == "->" ||
          t.text == "::" || t.text == "this") {
        --j;
        continue;
      }
      break;
    }
    for (size_t k = j; k < i; ++k) {
      out += Tok(k).text;
    }
    return out;
  }

  // Applies the declared on_exit_holds / on_exit_releases contract of a
  // receiver-less call to `callee` (resolved through the enclosing class
  // chain) to the caller's running lock state.
  void ApplyCalleeContract(const std::string& cls, const std::string& callee,
                           std::vector<std::string>* held,
                           std::vector<std::string>* manual) {
    std::string scope = cls;
    while (!scope.empty()) {
      auto it = model_->method_index.find(scope + "::" + callee);
      if (it != model_->method_index.end()) {
        const FunctionInfo& target = model_->functions[it->second];
        for (const std::string& rel : target.on_exit_releases) {
          if (!EraseMutexRef(manual, rel)) EraseMutexRef(held, rel);
        }
        for (const std::string& acq : target.on_exit_holds) {
          manual->push_back(acq);
        }
        return;
      }
      size_t cut = scope.rfind("::");
      if (cut == std::string::npos) return;
      scope = scope.substr(0, cut);
    }
  }

  void ParseFunctionBody(FunctionInfo* fn, const std::string& cls) {
    // idx_ is at '{'.
    ++idx_;
    std::vector<Block> blocks;
    blocks.push_back(Block{});
    // Entry lock state: REQUIRES + holds_on_entry (raw refs, resolved
    // later). Stored in acquisition-order; `held` snapshots copy it.
    std::vector<std::string> held;
    for (const std::string& r : fn->requires_held) {
      if (r != "=<declared>") held.push_back(r);
    }
    for (const std::string& r : fn->holds_on_entry) held.push_back(r);
    const std::vector<std::string> entry_held = held;
    std::vector<std::string> manual;  // manually Lock()ed refs
    bool saw_exit_in_stmt = false;
    bool stmt_start = true;
    size_t stmt_first = idx_;
    size_t stmt_top_call = 0;  // token index of last depth-base call
    int paren_depth = 0;

    auto held_now = [&]() {
      std::vector<std::string> out = held;
      for (const std::string& m : manual) out.push_back(m);
      return out;
    };
    auto ref_of = [&](const std::string& expr, int line) {
      auto ann = LintAnnotationsAt(line);
      if (auto it = ann.find("mutex"); it != ann.end()) {
        return "=" + Trim(it->second);
      }
      return cls + "|" + expr;
    };

    while (idx_ < f_.tokens.size()) {
      const Token& t = Tok(idx_);
      const std::string& x = t.text;
      if (x == "(") ++paren_depth;
      if (x == ")") --paren_depth;
      if (x == "{") {
        Block b;
        b.manual_snapshot = manual;
        blocks.push_back(b);
        ++idx_;
        stmt_start = true;
        stmt_first = idx_;
        saw_exit_in_stmt = false;
        continue;
      }
      if (x == "}") {
        Block done = blocks.back();
        blocks.pop_back();
        // Scoped locks released at block end.
        for (const std::string& m : done.scoped) {
          for (size_t k = held.size(); k > 0; --k) {
            if (held[k - 1] == m) {
              held.erase(held.begin() + static_cast<long>(k) - 1);
              break;
            }
          }
        }
        ++idx_;
        if (blocks.empty()) break;  // end of function body: keep the final
                                    // lock state for the exit-delta below
        // An inner block ending in return/continue/break diverges: the
        // fall-through path resumes from the state at block entry.
        if (done.ends_with_exit || saw_exit_in_stmt) {
          manual = done.manual_snapshot;
        }
        saw_exit_in_stmt = false;
        stmt_start = true;
        stmt_first = idx_;
        continue;
      }
      if (x == ";") {
        // Check-4 candidate: a full-statement call (possibly `(void)`-cast).
        if (stmt_top_call != 0) {
          MarkDiscardStatement(fn, stmt_first, idx_, stmt_top_call);
        }
        blocks.back().ends_with_exit = saw_exit_in_stmt;
        saw_exit_in_stmt = false;
        stmt_start = true;
        stmt_first = idx_ + 1;
        stmt_top_call = 0;
        ++idx_;
        continue;
      }
      if (x == "return" || x == "break" || x == "continue" || x == "abort") {
        saw_exit_in_stmt = true;
      }
      // MutexLock lock(&expr);
      if (x == "MutexLock" && Tok(idx_ + 1).kind == Token::kIdent &&
          Is(idx_ + 2, "(")) {
        size_t e = SkipBalanced(idx_ + 2, "(", ")");
        std::string expr;
        for (size_t r = idx_ + 3; r + 1 < e; ++r) {
          if (Tok(r).text != "&") expr += Tok(r).text;
        }
        std::string ref = ref_of(expr, t.line);
        fn->acquires.push_back(AcquireSite{ref, held_now(), t.line});
        blocks.back().scoped.push_back(ref);
        held.push_back(ref);
        idx_ = e;
        continue;
      }
      // expr.Lock() / expr->Lock() / TryLock / Unlock.
      if ((x == "Lock" || x == "TryLock" || x == "Unlock") && idx_ > 0 &&
          (Is(idx_ - 1, ".") || Is(idx_ - 1, "->")) && Is(idx_ + 1, "(")) {
        std::string expr = ReceiverEndingAt(idx_ - 1);
        std::string ref = ref_of(expr, t.line);
        if (x == "Unlock") {
          // Releasing a manually taken lock, or an entry-held one
          // (LoadInlineAndLock's contract) — entry refs come from
          // annotations, so match across ref spellings.
          if (!EraseMutexRef(&manual, ref)) EraseMutexRef(&held, ref);
        } else {
          fn->acquires.push_back(AcquireSite{ref, held_now(), t.line});
          manual.push_back(ref);
        }
        idx_ = SkipBalanced(idx_ + 1, "(", ")");
        continue;
      }
      // cv.Wait(&mu) / cv.WaitUntil(&mu, deadline): blocks while holding
      // everything except mu (released for the duration of the wait).
      if ((x == "Wait" || x == "WaitUntil") && idx_ > 0 &&
          (Is(idx_ - 1, ".") || Is(idx_ - 1, "->")) && Is(idx_ + 1, "(") &&
          Is(idx_ + 2, "&")) {
        size_t e = SkipBalanced(idx_ + 1, "(", ")");
        std::string expr;
        for (size_t r = idx_ + 3; r + 1 < e && !Is(r, ","); ++r) {
          expr += Tok(r).text;
        }
        WaitSite ws;
        ws.released_mutex_id = ref_of(expr, t.line);
        ws.held = held_now();
        ws.line = t.line;
        auto ann = LintAnnotationsAt(t.line);
        if (auto it = ann.find("blocking_ok"); it != ann.end()) {
          ws.blocking_reason = Trim(it->second);
        }
        fn->waits.push_back(ws);
        idx_ = e;
        continue;
      }
      // General call: IDENT '(' — record with receiver and held set.
      if (t.kind == Token::kIdent && Is(idx_ + 1, "(") &&
          !ControlKeywords().count(x) && !IsAnnotationMacro(x) &&
          x != "MutexLock") {
        bool is_method = idx_ > 0 && (Is(idx_ - 1, ".") || Is(idx_ - 1, "->"));
        CallSite call;
        call.callee_name = x;
        if (is_method) {
          // Receiver chain text minus the trailing `.`/`->` separator:
          // "env_->" → "env_", "options_.env." → "env".
          std::string chain = ReceiverEndingAt(idx_ - 1);
          size_t cut = chain.find_last_of(".>");
          call.receiver = cut == std::string::npos ? chain : chain.substr(0, cut);
          if (!call.receiver.empty() && call.receiver.back() == '-') {
            call.receiver.pop_back();
          }
          call.receiver = FinalNameOf(call.receiver);
        }
        call.held = held_now();
        call.line = t.line;
        auto ann = LintAnnotationsAt(t.line);
        if (auto it = ann.find("blocking_ok"); it != ann.end()) {
          call.blocking_reason = Trim(it->second);
          if (call.blocking_reason.empty()) {
            Diag(t.line, "lint-usage", "blocking_ok() waiver needs a reason");
          }
        }
        if (auto it = ann.find("discard_ok"); it != ann.end()) {
          call.discard_reason = Trim(it->second);
          if (call.discard_reason.empty()) {
            Diag(t.line, "lint-usage", "discard_ok() waiver needs a reason");
          }
        }
        fn->calls.push_back(call);
        // A same-class callee with a declared lock-state contract changes
        // the caller's held set: EvictUnitLocked releases s.mu,
        // LockAllShards exits holding every shard lock. Headers parse
        // before bodies, so the annotated declaration is already present.
        if (!is_method || call.receiver == "this") {
          ApplyCalleeContract(cls, x, &held, &manual);
        }
        if (paren_depth == 0) stmt_top_call = idx_;
        ++idx_;
        continue;
      }
      if (stmt_start && t.kind != Token::kEof) {
        stmt_start = false;
      }
      ++idx_;
    }

    // Net lock-state delta visible to callers (fall-through path).
    // Ref-spelling-insensitive: a re-taken entry lock comes back as a raw
    // body ref while the entry set uses annotation ids.
    auto contains = [](const std::vector<std::string>& list,
                       const std::string& ref) {
      for (const std::string& m : list) {
        if (SameMutexRef(m, ref)) return true;
      }
      return false;
    };
    for (const std::string& m : manual) {
      if (!contains(entry_held, m)) fn->computed_exit_holds.push_back(m);
    }
    for (const std::string& m : entry_held) {
      if (!contains(held, m) && !contains(manual, m)) {
        fn->computed_exit_releases.push_back(m);
      }
    }
  }

  // Classifies the statement [stmt_first, semi) as a discarded call if it
  // has the shape `[ (void) ] receiver-chain Call(...) ;`.
  void MarkDiscardStatement(FunctionInfo* fn, size_t stmt_first, size_t semi,
                            size_t call_idx) {
    // A brace group inside the statement (lambda, brace-init argument)
    // resets statement tracking past the call; such statements are never
    // plain discards.
    if (stmt_first > call_idx) return;
    size_t i = stmt_first;
    bool void_cast = false;
    if (Is(i, "(") && Is(i + 1, "void") && Is(i + 2, ")")) {
      void_cast = true;
      i += 3;
    }
    // The chain must be idents/separators only up to the call — and not a
    // value-consuming context like `return Status::Ok();`.
    for (size_t r = i; r < call_idx; ++r) {
      const Token& t = Tok(r);
      if (ControlKeywords().count(t.text) || t.text == "else" ||
          t.text == "do" || t.text == "case") {
        return;
      }
      if (t.kind == Token::kIdent || t.text == "." || t.text == "->" ||
          t.text == "::") {
        continue;
      }
      return;  // not a plain call statement
    }
    // After the call's closing paren there must be nothing before ';'.
    size_t close = SkipBalanced(call_idx + 1, "(", ")");
    if (close != semi) return;
    // Find the recorded CallSite (the last call with this token's line and
    // name).
    for (size_t k = fn->calls.size(); k > 0; --k) {
      CallSite& call = fn->calls[k - 1];
      if (call.line == Tok(call_idx).line &&
          call.callee_name == Tok(call_idx).text) {
        call.is_discard_stmt = true;
        call.is_void_cast = void_cast;
        return;
      }
    }
  }

  const LexedFile& f_;
  Model* model_;
  std::vector<Finding>* diags_;
  size_t idx_ = 0;
  std::map<std::string, size_t> fn_index_;
};

}  // namespace

void ExtractFile(const LexedFile& lexed, Model* model,
                 std::vector<Finding>* diags) {
  Extractor extractor(lexed, model, diags);
  extractor.Run();
}

void ParseRankDef(const std::string& path, const std::string& source,
                  Model* model, std::vector<Finding>* diags) {
  LexedFile lexed = Lex(path, source);
  for (size_t i = 0; i + 1 < lexed.tokens.size(); ++i) {
    const std::string& x = lexed.tokens[i].text;
    if (x != "GODIVA_LOCK_RANK" && x != "GODIVA_LOCK_RANK_RANGE") continue;
    if (lexed.tokens[i + 1].text != "(") continue;
    std::vector<std::vector<Token>> args;
    args.emplace_back();
    int depth = 0;
    size_t j = i + 1;
    for (; j < lexed.tokens.size(); ++j) {
      const std::string& y = lexed.tokens[j].text;
      if (y == "(") {
        ++depth;
        if (depth == 1) continue;
      }
      if (y == ")") {
        --depth;
        if (depth == 0) break;
      }
      if (y == "," && depth == 1) {
        args.emplace_back();
        continue;
      }
      args.back().push_back(lexed.tokens[j]);
    }
    auto text_of = [](const std::vector<Token>& ts) {
      std::string out;
      for (const Token& t : ts) {
        std::string piece = t.text;
        if (t.kind == Token::kString && piece.size() >= 2) {
          piece = piece.substr(1, piece.size() - 2);
        }
        out += piece;
      }
      return out;
    };
    RankEntry entry;
    if (x == "GODIVA_LOCK_RANK" && args.size() >= 4) {
      entry.symbol = text_of(args[0]);
      entry.rank = std::atoi(text_of(args[1]).c_str());
      entry.width = 1;
      entry.owner = text_of(args[2]);
    } else if (x == "GODIVA_LOCK_RANK_RANGE" && args.size() >= 6) {
      entry.symbol = text_of(args[0]);
      entry.rank = std::atoi(text_of(args[1]).c_str());
      entry.width = std::atoi(text_of(args[3]).c_str());
      entry.owner = text_of(args[4]);
    } else {
      diags->push_back(Finding{path, lexed.tokens[i].line, "lint-usage",
                               "malformed " + x + " entry"});
      i = j;
      continue;
    }
    model->rank_registry.push_back(entry);
    i = j;
  }
}

void ResolveMutexRefs(Model* model, std::vector<Finding>* diags) {
  // Apply ctor init-list rank bindings.
  for (MutexDecl& decl : model->mutexes) {
    if (decl.rank_symbol.empty()) {
      auto it = model->ctor_rank_bindings.find(decl.id);
      if (it != model->ctor_rank_bindings.end()) decl.rank_symbol = it->second;
    }
  }
  // member name → decl ids (for unique-name fallback).
  std::map<std::string, std::vector<const MutexDecl*>> by_member;
  std::map<std::string, const MutexDecl*> by_id;
  for (const MutexDecl& decl : model->mutexes) {
    by_member[decl.member].push_back(&decl);
    by_id[decl.id] = &decl;
  }

  auto resolve = [&](const std::string& raw, const std::string& file,
                     int line) -> std::string {
    if (!raw.empty() && raw[0] == '=') {
      // Pre-resolved via annotation: verify it names a real decl.
      std::string id = raw.substr(1);
      if (!by_id.count(id)) {
        diags->push_back(Finding{file, line, "lint-usage",
                                 "annotation names unknown mutex '" + id + "'"});
        return "";
      }
      return id;
    }
    size_t bar = raw.find('|');
    std::string cls = bar == std::string::npos ? "" : raw.substr(0, bar);
    std::string expr = bar == std::string::npos ? raw : raw.substr(bar + 1);
    std::string member = FinalNameOf(expr);
    // Walk the class nesting chain outward.
    std::string scope = cls;
    while (true) {
      auto it = by_id.find(scope.empty() ? member : scope + "::" + member);
      if (it != by_id.end()) return it->second->id;
      size_t cut = scope.rfind("::");
      if (cut == std::string::npos) {
        if (!scope.empty()) {
          auto git = by_id.find(member);
          if (git != by_id.end()) return git->second->id;
        }
        break;
      }
      scope = scope.substr(0, cut);
    }
    auto mit = by_member.find(member);
    if (mit != by_member.end() && mit->second.size() == 1) {
      return mit->second[0]->id;
    }
    if (mit != by_member.end() && mit->second.size() > 1) {
      diags->push_back(
          Finding{file, line, "lint-usage",
                  "ambiguous mutex reference '" + expr +
                      "'; disambiguate with // lint: mutex(Class::member)"});
    } else {
      diags->push_back(Finding{file, line, "lint-usage",
                               "cannot resolve mutex reference '" + expr +
                                   "' (enclosing class '" + cls + "')"});
    }
    return "";
  };

  auto resolve_list = [&](std::vector<std::string>* refs,
                          const std::string& file, int line) {
    std::vector<std::string> out;
    for (const std::string& r : *refs) {
      if (r == "=<declared>") continue;
      std::string id = resolve(r, file, line);
      if (!id.empty()) out.push_back(id);
    }
    *refs = out;
  };

  for (FunctionInfo& fn : model->functions) {
    // The sync primitives themselves (Mutex forwarding to std::mutex,
    // MutexLock's RAII body, CondVar's release/re-acquire) implement the
    // contracts the checks enforce; analyzing their bodies against those
    // same contracts is circular. Treat them as opaque.
    std::string tail = fn.cls;
    if (size_t cut = tail.rfind("::"); cut != std::string::npos) {
      tail = tail.substr(cut + 2);
    }
    if (tail == "Mutex" || tail == "MutexLock" || tail == "CondVar") {
      fn.acquires.clear();
      fn.calls.clear();
      fn.waits.clear();
      fn.computed_exit_holds.clear();
      fn.computed_exit_releases.clear();
      continue;
    }
    bool entry_declared =
        std::find(fn.requires_held.begin(), fn.requires_held.end(),
                  std::string("=<declared>")) != fn.requires_held.end();
    resolve_list(&fn.requires_held, fn.file, fn.line);
    if (entry_declared) fn.requires_held.push_back("=<declared>");
    resolve_list(&fn.holds_on_entry, fn.file, fn.line);
    resolve_list(&fn.on_exit_holds, fn.file, fn.line);
    resolve_list(&fn.on_exit_releases, fn.file, fn.line);
    const std::string& site_file =
        fn.body_file.empty() ? fn.file : fn.body_file;
    resolve_list(&fn.computed_exit_holds, site_file, fn.line);
    resolve_list(&fn.computed_exit_releases, site_file, fn.line);
    for (AcquireSite& site : fn.acquires) {
      std::string id = resolve(site.mutex_id, site_file, site.line);
      site.mutex_id = id;
      resolve_list(&site.held, site_file, site.line);
    }
    for (CallSite& call : fn.calls) {
      resolve_list(&call.held, site_file, call.line);
    }
    for (WaitSite& ws : fn.waits) {
      ws.released_mutex_id = resolve(ws.released_mutex_id, site_file, ws.line);
      resolve_list(&ws.held, site_file, ws.line);
    }
  }
}

}  // namespace godiva::lint
