// godiva_lint — repo-specific static analysis that proves GODIVA's
// concurrency contracts over every path, not just the schedules the tests
// happen to execute (DESIGN.md §12).
//
// The container toolchain has no usable Clang frontend (no LibTooling
// headers, no libclang, no python bindings), so the tool carries its own
// lightweight C++ lexer and a convention-aware extractor tuned to this
// codebase's idioms: godiva::Mutex members constructed with lock_rank::
// constants, MutexLock scopes, REQUIRES/EXCLUDES/GUARDED_BY annotations,
// Status/Result returns. It is NOT a general C++ analyzer — it proves the
// conventions this repo actually uses, and the fixture corpus in
// tests/lint/ pins down exactly what it can and cannot see.
//
// Checks (each finding names its check):
//   lock-rank        interprocedural may-hold-while-acquiring graph,
//                    cross-checked against common/lock_rank.def: any edge
//                    out of rank order, any cycle, any unregistered or
//                    unannotated mutex.
//   guarded-by       every mutable member of a class that owns a
//                    godiva::Mutex is GUARDED_BY, atomic, const, a sync
//                    primitive, or carries // lint: unguarded(reason).
//   blocking         Env/file I/O, sleeps and semaphore waits reachable
//                    while a kGboShardBase+i or kGboWatch mutex is held.
//   discarded-status expression-statement and (void)-cast discards of
//                    Status/Result-returning calls without
//                    // lint: discard_ok(reason).
//
// Waiver grammar (comment on the same line or up to 3 lines above; every
// waiver REQUIRES a non-empty reason):
//   // lint: unguarded(reason)        member is safe without a guard
//   // lint: discard_ok(reason)       intentional (void)/statement discard
//   // lint: blocking_ok(reason)      blocking call under lock is safe
//   // lint: blocking(reason)         declares a function blocking by fiat
//   // lint: rank(kSymbol)            mutex member whose rank is passed in
//                                     at run time (e.g. Gbo::Shard::mu)
//   // lint: unranked(reason)         mutex deliberately outside the order
//   // lint: mutex(Class::member)     disambiguates an acquisition target
//   // lint: holds_on_entry(A, B)     entry lock set of a function that
//                                     opts out of Clang TSA
//   // lint: on_exit_holds(A)         net acquisitions visible to callers
//   // lint: on_exit_releases(A)      net releases visible to callers
#ifndef GODIVA_TOOLS_GODIVA_LINT_LINT_H_
#define GODIVA_TOOLS_GODIVA_LINT_LINT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace godiva::lint {

// ---------------------------------------------------------------------------
// Lexer.

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEof };
  Kind kind = kEof;
  std::string text;
  int line = 0;
};

// One contiguous block of // comments (or a /* */ block), concatenated.
// `last_line` is the line its final fragment sits on; a trailing comment
// block on a code line keeps that code line.
struct CommentBlock {
  int first_line = 0;
  int last_line = 0;
  std::string text;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<CommentBlock> comments;  // ascending by last_line
};

// Tokenizes C++ source. Preprocessor directives are skipped (with
// continuation handling); comments are collected separately.
LexedFile Lex(const std::string& path, const std::string& source);

// ---------------------------------------------------------------------------
// Model: what the extractor reads out of the token streams.

// Identity of one mutex declaration: "Gbo::mu_", "Gbo::Shard::mu",
// "g_log_mutex". All shard instances share one identity — the per-index
// rank order inside the range is the runtime checker's job; the static
// graph models the range as a single node with a legal self-edge.
struct MutexDecl {
  std::string id;           // qualified name
  std::string cls;          // owning class ("" for globals)
  std::string member;       // member / variable name
  std::string rank_symbol;  // lock_rank:: symbol, "" if unranked
  std::string unranked_reason;
  std::string file;
  int line = 0;
};

struct FieldDecl {
  std::string cls;
  std::string name;
  std::string type_text;
  bool guarded = false;      // GUARDED_BY / PT_GUARDED_BY present
  bool is_atomic = false;    // std::atomic<...>
  bool is_const = false;     // const-qualified (or reference)
  bool is_static = false;
  bool is_sync_type = false;  // Mutex / CondVar / Semaphore / ...
  std::string unguarded_reason;  // // lint: unguarded(reason)
  std::string file;
  int line = 0;
};

// A mutex acquisition inside a function body, with the lock set held just
// before it. `blocking_release_of` is set for CondVar waits: the wait
// blocks while holding everything in `held` EXCEPT that mutex.
struct AcquireSite {
  std::string mutex_id;
  std::vector<std::string> held;  // mutex ids held before this acquisition
  int line = 0;
};

struct CallSite {
  std::string callee_name;      // unqualified name as written
  std::string receiver;         // last identifier of the receiver chain, ""
  std::vector<std::string> held;
  int line = 0;
  bool is_discard_stmt = false;  // full-statement call (check 4 candidate)
  bool is_void_cast = false;     // (void)call(...)
  std::string discard_reason;    // // lint: discard_ok(reason)
  std::string blocking_reason;   // // lint: blocking_ok(reason)
};

// A CondVar::Wait/WaitUntil site: blocks while holding `held` minus
// `released`.
struct WaitSite {
  std::string released_mutex_id;
  std::vector<std::string> held;
  int line = 0;
  std::string blocking_reason;
};

struct FunctionInfo {
  std::string cls;   // enclosing class ("" for free functions)
  std::string name;  // unqualified
  std::string qualified() const { return cls.empty() ? name : cls + "::" + name; }
  std::string file;  // first declaration
  int line = 0;
  // Where the body lives (== file for in-class definitions); site findings
  // point here.
  std::string body_file;
  bool has_body = false;
  bool returns_status = false;  // Status / Result<...> return type
  bool no_tsa = false;          // NO_THREAD_SAFETY_ANALYSIS
  bool blocking_by_fiat = false;  // // lint: blocking(reason)
  std::string blocking_fiat_reason;
  std::vector<std::string> requires_held;   // REQUIRES(...) mutex ids
  std::vector<std::string> holds_on_entry;  // // lint: holds_on_entry(...)
  std::vector<std::string> on_exit_holds;     // annotation override
  std::vector<std::string> on_exit_releases;  // annotation override
  // Computed from the body when not overridden: net lock-state delta.
  std::vector<std::string> computed_exit_holds;
  std::vector<std::string> computed_exit_releases;
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  std::vector<WaitSite> waits;
};

// One entry parsed from common/lock_rank.def.
struct RankEntry {
  std::string symbol;
  int rank = 0;
  int width = 1;
  std::string owner;  // the declaration expected to claim this rank
};

struct Model {
  std::vector<MutexDecl> mutexes;
  std::vector<FieldDecl> fields;
  std::vector<FunctionInfo> functions;
  std::set<std::string> status_fn_names;  // names returning Status/Result
  std::vector<RankEntry> rank_registry;
  // Classes that own at least one by-value godiva::Mutex member.
  std::set<std::string> mutex_owning_classes;
  // "Class::member" → lock_rank symbol bound in a constructor init list
  // (e.g. Semaphore::mutex_); applied to MutexDecls after extraction.
  std::map<std::string, std::string> ctor_rank_bindings;
  // Qualified method name → index in `functions`, so a header declaration
  // (REQUIRES, NO_THREAD_SAFETY_ANALYSIS, waivers) and its out-of-line
  // definition (the body) merge into one record. Free functions are not
  // merged: same-named statics in different files must stay distinct.
  std::map<std::string, size_t> method_index;
};

// Extracts declarations, functions and sites from one lexed file into the
// model. `diags` receives extraction-level problems (unresolvable mutex
// refs, malformed waivers).
struct Finding {
  std::string file;
  int line = 0;
  std::string check;  // "lock-rank", "guarded-by", "blocking",
                      // "discarded-status", "lint-usage"
  std::string message;
};

void ExtractFile(const LexedFile& lexed, Model* model,
                 std::vector<Finding>* diags);

// Resolves acquisition/held mutex references recorded as raw member names
// into qualified MutexDecl ids. Run after all files are extracted.
void ResolveMutexRefs(Model* model, std::vector<Finding>* diags);

// Parses common/lock_rank.def into model->rank_registry.
void ParseRankDef(const std::string& path, const std::string& source,
                  Model* model, std::vector<Finding>* diags);

// ---------------------------------------------------------------------------
// Analysis.

struct AnalysisOptions {
  // Ranks whose critical sections must not block (check 3): defaults to
  // the shard range and the watch mutex.
  std::vector<std::string> no_blocking_ranks = {"kGboShardBase", "kGboWatch"};
  std::string dot_path;       // emit the lock graph here if non-empty
  std::string ranks_md_path;  // emit the generated rank table here
  // Debugging: print (to stderr) how this mutex id enters each function's
  // transitive-acquire set, so surprising edges can be traced to a call.
  std::string trace_mutex;
};

// Runs all four checks over the model; returns findings sorted by file and
// line. Also writes the DOT / markdown artifacts when requested.
std::vector<Finding> Analyze(const Model& model, const AnalysisOptions& options);

// Formats "file:line: [check] message".
std::string FormatFinding(const Finding& finding);

}  // namespace godiva::lint

#endif  // GODIVA_TOOLS_GODIVA_LINT_LINT_H_
