// godiva_lint driver.
//
// Usage:
//   godiva_lint --compdb build/compile_commands.json
//               [--only-under src] [--rank-def src/common/lock_rank.def]
//               [--dot out.dot] [--ranks-md out.md] [extra files...]
//
// Translation units come from compile_commands.json (filtered to
// --only-under, default "src"); headers are discovered by walking the
// directories those units live in, so annotations in .h files are seen.
// Positional file arguments bypass the compdb entirely — the fixture
// tests in tests/lint/ run the tool on standalone snippets this way.
//
// Exit status: 0 when no findings, 1 when any finding, 2 on usage errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "godiva_lint/lint.h"

namespace godiva::lint {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "godiva_lint: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Pulls every "file" value out of compile_commands.json. The format is
// fixed (CMake emits it), so a targeted scan beats a JSON dependency.
std::vector<std::string> CompdbFiles(const std::string& path) {
  std::string text = ReadFileOrDie(path);
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos = text.find('"', text.find(':', pos));
    if (pos == std::string::npos) break;
    size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    out.push_back(text.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int Run(int argc, char** argv) {
  std::string compdb, only_under = "src", rank_def;
  AnalysisOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) {
      if (++i >= argc) {
        std::cerr << "godiva_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return std::string(argv[i]);
    };
    if (arg == "--compdb") {
      compdb = value("--compdb");
    } else if (arg == "--only-under") {
      only_under = value("--only-under");
    } else if (arg == "--rank-def") {
      rank_def = value("--rank-def");
    } else if (arg == "--dot") {
      options.dot_path = value("--dot");
    } else if (arg == "--ranks-md") {
      options.ranks_md_path = value("--ranks-md");
    } else if (arg == "--trace-mutex") {
      options.trace_mutex = value("--trace-mutex");
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "godiva_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (compdb.empty() && files.empty()) {
    std::cerr << "godiva_lint: need --compdb or explicit files\n";
    return 2;
  }

  // Collect translation units, then the headers next to them.
  std::set<std::string> sources(files.begin(), files.end());
  if (!compdb.empty()) {
    std::set<std::string> dirs;
    for (const std::string& file : CompdbFiles(compdb)) {
      std::string native = fs::path(file).lexically_normal().string();
      if (native.find("/" + only_under + "/") == std::string::npos) continue;
      sources.insert(native);
      dirs.insert(fs::path(native).parent_path().string());
    }
    for (const std::string& dir : dirs) {
      std::error_code ec;
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".h") {
          sources.insert(entry.path().string());
        }
      }
    }
    if (rank_def.empty()) {
      // Default: lock_rank.def next to mutex.h in the scanned tree.
      for (const std::string& src : sources) {
        if (fs::path(src).filename() == "mutex.h") {
          rank_def =
              (fs::path(src).parent_path() / "lock_rank.def").string();
          break;
        }
      }
    }
  }
  if (rank_def.empty()) {
    std::cerr << "godiva_lint: need --rank-def (no mutex.h in scan set)\n";
    return 2;
  }

  Model model;
  std::vector<Finding> findings;
  ParseRankDef(rank_def, ReadFileOrDie(rank_def), &model, &findings);
  if (model.rank_registry.empty()) {
    std::cerr << "godiva_lint: no rank entries parsed from " << rank_def
              << "\n";
    return 2;
  }
  // Headers first so class declarations exist before out-of-line bodies;
  // within each group, stable path order keeps output deterministic.
  std::vector<std::string> ordered(sources.begin(), sources.end());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const std::string& a, const std::string& b) {
                     bool ah = fs::path(a).extension() == ".h";
                     bool bh = fs::path(b).extension() == ".h";
                     if (ah != bh) return ah;
                     return a < b;
                   });
  for (const std::string& path : ordered) {
    LexedFile lexed = Lex(path, ReadFileOrDie(path));
    ExtractFile(lexed, &model, &findings);
  }
  ResolveMutexRefs(&model, &findings);
  std::vector<Finding> analysis = Analyze(model, options);
  findings.insert(findings.end(), analysis.begin(), analysis.end());

  for (const Finding& finding : findings) {
    std::cout << FormatFinding(finding) << "\n";
  }
  std::cout << "godiva_lint: " << ordered.size() << " files, "
            << model.mutexes.size() << " mutexes, "
            << model.rank_registry.size() << " rank entries, "
            << model.functions.size() << " functions, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace godiva::lint

int main(int argc, char** argv) { return godiva::lint::Run(argc, argv); }
