#include <cctype>
#include <string>

#include "godiva_lint/lint.h"

namespace godiva::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& source) {
  LexedFile out;
  out.path = path;
  size_t i = 0;
  const size_t n = source.size();
  int line = 1;
  // Comment accumulation: consecutive comment fragments (separated only by
  // whitespace/newlines) merge into one block so a waiver may wrap lines.
  bool comment_open = false;
  auto append_comment = [&](int at_line, const std::string& text) {
    if (comment_open && !out.comments.empty() &&
        at_line <= out.comments.back().last_line + 1) {
      out.comments.back().text += " " + text;
      out.comments.back().last_line = at_line;
    } else {
      out.comments.push_back(CommentBlock{at_line, at_line, text});
    }
    comment_open = true;
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the logical line (with continuations).
    // Only when '#' starts the line's non-whitespace content.
    if (c == '#') {
      bool at_line_start = true;
      for (size_t j = i; j > 0; --j) {
        char p = source[j - 1];
        if (p == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(p))) {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        while (i < n) {
          if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
          }
          if (source[i] == '\n') break;
          ++i;
        }
        continue;
      }
      out.tokens.push_back(Token{Token::kPunct, "#", line});
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t start = i + 2;
      while (i < n && source[i] != '\n') ++i;
      append_comment(line, source.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      int start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      std::string text = source.substr(start, i - start);
      for (char& ch : text) {
        if (ch == '\n') ch = ' ';
      }
      append_comment(start_line, text);
      if (!out.comments.empty()) out.comments.back().last_line = line;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    comment_open = false;
    if (c == '"') {
      // Raw strings are not used in this codebase; plain escape handling.
      size_t start = i;
      ++i;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        if (source[i] == '\n') ++line;
        ++i;
      }
      ++i;
      out.tokens.push_back(
          Token{Token::kString, source.substr(start, i - start), line});
      continue;
    }
    if (c == '\'') {
      size_t start = i;
      ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      ++i;
      out.tokens.push_back(
          Token{Token::kString, source.substr(start, i - start), line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      out.tokens.push_back(
          Token{Token::kIdent, source.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(source[i]) || source[i] == '.' ||
                       ((source[i] == '+' || source[i] == '-') && i > start &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      out.tokens.push_back(
          Token{Token::kNumber, source.substr(start, i - start), line});
      continue;
    }
    // Multi-char punctuation the extractor cares about: :: -> punctuation
    // groups. Everything else is single-char.
    if (c == ':' && i + 1 < n && source[i + 1] == ':') {
      out.tokens.push_back(Token{Token::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '>') {
      out.tokens.push_back(Token{Token::kPunct, "->", line});
      i += 2;
      continue;
    }
    // Left shift must be one token: two '<' tokens would read as nested
    // template-argument openers and derail the declaration scanner for the
    // rest of the file (e.g. `size_t limit = 1 << 20;` in a member init).
    // '>>' stays two tokens — in declaration context it is two template
    // closers (`vector<unique_ptr<T>>`), which is what the angle-depth
    // heuristic wants.
    if (c == '<' && i + 1 < n && source[i + 1] == '<') {
      out.tokens.push_back(Token{Token::kPunct, "<<", line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{Token::kPunct, std::string(1, c), line});
    ++i;
  }
  out.tokens.push_back(Token{Token::kEof, "", line});
  return out;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.check + "] " + finding.message;
}

}  // namespace godiva::lint
