// Multi-session serving under overload (DESIGN.md §13, EXPERIMENTS.md).
// Two scenarios over the same synthetic unit populations:
//
//   uncontended — the interactive clients alone, ample memory: the
//     baseline interactive demand latency.
//   overload    — the full mixed-priority client mix offering at least
//     2x the server's demand window, with a memory limit the background
//     streams overrun: admission control and the shed ladder engage.
//
// Headline metrics: interactive p99 under overload vs uncontended (the
// graceful-degradation claim — the server sheds background work instead
// of letting interactive latency collapse), the weighted fair-share ratio
// across classes, and the shed/rejection counters.
//
// With --sim-mode=de the whole bench replays on the discrete-event
// virtual clock (deterministic latencies, no wall-time cost for modeled
// delays), and a fourth scenario sweeps 100/500/1000 sessions — client
// populations the scaled mode could never host — reporting interactive
// p50/p99 and the fair-share ratio at each population.
//
// Flags: --reads=N per-session demand reads, --cost-us=U synthetic read
// cost, --quick (small mix), --sim-mode=M (see bench_util.h), --json=PATH
// for tools/bench_diff.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/options.h"
#include "core/server.h"
#include "workloads/serving.h"

namespace godiva::bench {
namespace {

using workloads::ClientResult;
using workloads::RunServingWorkload;
using workloads::ServingOptions;
using workloads::ServingReport;

struct Flags {
  int reads = 96;
  int cost_us = 300;
  std::string sim_mode;
  std::string json_path;

  static Flags Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--reads=", 8) == 0) {
        flags.reads = std::atoi(arg + 8);
      } else if (std::strncmp(arg, "--cost-us=", 10) == 0) {
        flags.cost_us = std::atoi(arg + 10);
      } else if (std::strncmp(arg, "--sim-mode=", 11) == 0) {
        flags.sim_mode = arg + 11;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.reads = 32;
        flags.cost_us = 150;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    return flags;
  }
};

constexpr int64_t kPayloadBytes = 64 * 1024;

// Per-priority-class aggregation of a ServingReport.
struct ClassAgg {
  LatencyRecorder latency;
  int64_t reads_ok = 0;
  int64_t reads_rejected = 0;
  int64_t prefetches_shed = 0;
  double wall_seconds = 0;  // max across the class's clients
  int clients = 0;
};

ClassAgg Aggregate(const ServingReport& report, PriorityClass cls) {
  ClassAgg agg;
  for (const ClientResult& client : report.clients) {
    if (client.priority != cls) continue;
    ++agg.clients;
    agg.latency.RecordAll(client.latencies_ms);
    agg.reads_ok += client.reads_ok;
    agg.reads_rejected += client.reads_rejected;
    agg.prefetches_shed += client.stats.prefetches_shed;
    agg.wall_seconds = std::max(agg.wall_seconds, client.wall_seconds);
  }
  return agg;
}

ServingOptions MixedOptions(const Flags& flags) {
  ServingOptions options;
  options.interactive_sessions = 4;
  options.batch_sessions = 4;
  options.background_sessions = 8;  // 16 clients vs a demand window of 8
  options.reads_per_session = flags.reads;
  options.payload_bytes = kPayloadBytes;
  options.read_cost = std::chrono::microseconds(flags.cost_us);
  options.server.max_inflight_demand = 8;
  options.server.demand_reserve_interactive = 2;
  options.flood_delay = std::chrono::milliseconds(20);
  return options;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const SimMode mode = ResolveSimMode(flags.sim_mode);
  std::printf("bench_serving: %d reads/session, %dus synthetic read cost, "
              "%s mode\n",
              flags.reads, flags.cost_us, SimModeName(mode));
  // Discrete-event numbers are exact virtual-clock measurements — a
  // separate baseline namespace keeps them from diffing against the noisy
  // scaled-sleep numbers (and vice versa).
  BenchJson json(mode == SimMode::kDiscreteEvent ? "bench_serving_de"
                                                 : "bench_serving");

  // ----- Scenario 1: uncontended interactive baseline.
  ServingOptions uncontended = MixedOptions(flags);
  uncontended.batch_sessions = 0;
  uncontended.background_sessions = 0;
  GboOptions db_options;
  db_options.io_threads = 2;
  db_options.memory_limit_bytes = 256 * 1024 * 1024;  // no pressure
  double base_p50 = 0;
  double base_p99 = 0;
  {
    auto scope = MakeSimScope(mode);
    Gbo db(db_options);
    auto report = RunServingWorkload(&db, uncontended);
    if (!report.ok()) {
      std::fprintf(stderr, "uncontended scenario failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    ClassAgg agg = Aggregate(*report, PriorityClass::kInteractive);
    base_p50 = agg.latency.Percentile(0.50);
    base_p99 = agg.latency.Percentile(0.99);
    std::printf("uncontended: %d interactive clients, p50 %.3fms, "
                "p99 %.3fms\n",
                agg.clients, base_p50, base_p99);
  }

  // ----- Scenario 2: mixed-priority overload. The client mix offers 2x
  // the demand window, and the cold streams (8 clients x 256 units x
  // 64KiB, re-read as the LRU churns) overrun the memory limit so the
  // shed ladder engages.
  ServingOptions overload = MixedOptions(flags);
  GboOptions pressured = db_options;
  pressured.memory_limit_bytes = 6 * 1024 * 1024;  // ~96 units resident
  GboStats after;
  ClassAgg inter, batch,bg;
  {
    auto scope = MakeSimScope(mode);
    Gbo db(pressured);
    auto report = RunServingWorkload(&db, overload);
    if (!report.ok()) {
      std::fprintf(stderr, "overload scenario failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    inter = Aggregate(*report, PriorityClass::kInteractive);
    batch = Aggregate(*report, PriorityClass::kBatch);
    bg = Aggregate(*report, PriorityClass::kBackground);
    after = db.stats();
  }

  std::printf("overload: %d clients vs a demand window of %d\n",
              overload.interactive_sessions + overload.batch_sessions +
                  overload.background_sessions,
              overload.server.max_inflight_demand);
  std::printf("  %-12s %8s %8s %10s %10s %10s\n", "class", "p50(ms)",
              "p99(ms)", "reads ok", "rejected", "pf shed");
  auto row = [](const char* name, const ClassAgg& agg) {
    std::printf("  %-12s %8.3f %8.3f %10lld %10lld %10lld\n", name,
                agg.latency.Percentile(0.50), agg.latency.Percentile(0.99),
                static_cast<long long>(agg.reads_ok),
                static_cast<long long>(agg.reads_rejected),
                static_cast<long long>(agg.prefetches_shed));
  };
  row("interactive", inter);
  row("batch", batch);
  row("background", bg);

  const double over_p99 = inter.latency.Percentile(0.99);
  const double degradation = base_p99 > 0 ? over_p99 / base_p99 : 0;
  std::printf("  interactive p99 degradation under overload: %.2fx "
              "(acceptance: <= 2x)\n",
              degradation);

  // ----- Scenario 3: fairness. Every session streams its own equal-size
  // cold range (identical work shape, ample memory), 16 closed-loop
  // clients against a window of 8: the scheduler alone decides who
  // progresses. The ratio of the slowest to the fastest session's service
  // rate is the starvation-freedom measure (1.0 = perfectly even).
  ServingOptions fair = MixedOptions(flags);
  fair.flood_delay = Duration::zero();
  fair.prefetch_ahead = 0;
  fair.hot_units = flags.reads;  // never wraps: every read is a miss
  fair.batch_units = flags.reads;
  fair.cold_units = flags.reads;
  fair.server.demand_reserve_interactive = 0;  // pure DRR
  double fairness = 0;
  {
    auto scope = MakeSimScope(mode);
    Gbo db(db_options);  // ample memory: no shed ladder in this scenario
    auto report = RunServingWorkload(&db, fair);
    if (!report.ok()) {
      std::fprintf(stderr, "fairness scenario failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    double min_rate = 0;
    double max_rate = 0;
    for (const ClientResult& client : report->clients) {
      if (client.wall_seconds <= 0) continue;
      double rate =
          static_cast<double>(client.reads_ok) / client.wall_seconds;
      if (min_rate == 0 || rate < min_rate) min_rate = rate;
      max_rate = std::max(max_rate, rate);
    }
    fairness = max_rate > 0 ? min_rate / max_rate : 0;
  }
  std::printf("  per-session fair-share ratio (slowest/fastest, equal "
              "work): %.3f\n",
              fairness);
  std::printf("  server counters: admitted=%lld queued=%lld rejected=%lld "
              "shed=%lld+%lld forced_unpins=%lld\n",
              static_cast<long long>(after.serving_reads_admitted),
              static_cast<long long>(after.serving_reads_queued),
              static_cast<long long>(after.serving_reads_rejected),
              static_cast<long long>(after.serving_prefetches_shed),
              static_cast<long long>(after.serving_demand_shed),
              static_cast<long long>(after.serving_forced_unpins));

  // ----- Scenario 4 (discrete-event only): session-count scaling. Every
  // modeled delay lands on the virtual clock, so a thousand closed-loop
  // clients replay deterministically in seconds of wall time — a
  // population the scaled mode could never host. Latencies and fair-share
  // ratios are exact virtual-clock numbers: identical on every run.
  if (mode == SimMode::kDiscreteEvent) {
    std::printf("session sweep (discrete event):\n");
    std::printf("  %8s %8s %8s %10s %10s %10s\n", "sessions", "p50(ms)",
                "p99(ms)", "fairness", "virtual(s)", "wall(s)");
    for (int sessions : {100, 500, 1000}) {
      auto scope = MakeSimScope(mode);
      ServingOptions sweep;
      sweep.interactive_sessions = sessions / 4;
      sweep.batch_sessions = sessions / 4;
      sweep.background_sessions = sessions - 2 * (sessions / 4);
      sweep.reads_per_session = 12;
      sweep.payload_bytes = 16 * 1024;
      sweep.read_cost = std::chrono::microseconds(flags.cost_us);
      sweep.prefetch_ahead = 1;
      sweep.hot_units = 16;
      sweep.batch_units = 64;
      sweep.cold_units = 512;
      sweep.flood_delay = std::chrono::milliseconds(20);
      sweep.server.max_inflight_demand = 32;
      sweep.server.demand_reserve_interactive = 4;
      GboOptions sweep_db;
      sweep_db.io_threads = 4;
      sweep_db.metadata_shards = 4;
      sweep_db.memory_limit_bytes = 64 * 1024 * 1024;
      // Real wall clock, measured outside the virtual one: the sweep's
      // cost to the machine, not to the model.
      auto wall_start = std::chrono::steady_clock::now();
      double virtual_seconds = 0;
      ClassAgg sweep_inter;
      double sweep_fairness = 0;
      {
        Gbo db(sweep_db);
        auto report = RunServingWorkload(&db, sweep);
        if (!report.ok()) {
          std::fprintf(stderr, "%d-session sweep failed: %s\n", sessions,
                       report.status().ToString().c_str());
          return 1;
        }
        sweep_inter = Aggregate(*report, PriorityClass::kInteractive);
        // Fairness within the background class: its clients share one
        // work shape, so slowest/fastest service rate measures starvation
        // freedom (cross-class rate ratios only measure the priority
        // ladder itself).
        double min_rate = 0;
        double max_rate = 0;
        for (const ClientResult& client : report->clients) {
          if (client.priority != PriorityClass::kBackground) continue;
          if (client.wall_seconds <= 0) continue;
          double rate =
              static_cast<double>(client.reads_ok) / client.wall_seconds;
          if (min_rate == 0 || rate < min_rate) min_rate = rate;
          max_rate = std::max(max_rate, rate);
        }
        sweep_fairness = max_rate > 0 ? min_rate / max_rate : 0;
        virtual_seconds = scope->scheduler()->VirtualElapsedSeconds();
      }
      double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      double p50 = sweep_inter.latency.Percentile(0.50);
      double p99 = sweep_inter.latency.Percentile(0.99);
      std::printf("  %8d %8.3f %8.3f %10.3f %10.2f %10.2f\n", sessions, p50,
                  p99, sweep_fairness, virtual_seconds, wall_seconds);
      std::string prefix = StrFormat("de_sessions_%d_", sessions);
      json.Add(prefix + "interactive_p50_ms", p50);
      json.Add(prefix + "interactive_p99_ms", p99);
      json.Add(prefix + "fair_share_ratio", sweep_fairness);
      json.Add(prefix + "virtual_seconds", virtual_seconds);
    }
  }

  json.Add("interactive_p50_uncontended_ms", base_p50);
  json.Add("interactive_p99_uncontended_ms", base_p99);
  json.Add("interactive_p50_overload_ms", inter.latency.Percentile(0.50));
  json.Add("interactive_p99_overload_ms", over_p99);
  json.Add("interactive_p99_degradation_x", degradation);
  json.Add("batch_p99_overload_ms", batch.latency.Percentile(0.99));
  json.Add("background_p99_overload_ms", bg.latency.Percentile(0.99));
  json.Add("fair_share_ratio", fairness);
  json.Add("background_rejected_reads",
           static_cast<double>(bg.reads_rejected));
  json.Add("prefetches_shed",
           static_cast<double>(after.serving_prefetches_shed));
  json.Add("forced_unpins",
           static_cast<double>(after.serving_forced_unpins));
  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
