// Live-ingest benchmark: an IngestProducer streams snapshots into the Gbo
// through the crash-consistent writer while a consumer follows the frontier
// through a FrontierWatch, acking as it goes (DESIGN.md §11). Headline
// metrics, all tracked by tools/bench_diff:
//   frontier_lag_p50_s/p99_s  publish-to-ready latency at the consumer
//   stall_s                   producer time blocked on the lag window
//   demand_p99_noingest_ms    demand unit load, quiet database
//   demand_p99_ingest_ms      demand unit load while ingest is running
//   mem_peak_frac             peak record memory / memory limit
//   io_overlap_ratio          producer/consumer concurrency (1 = perfectly
//                             overlapped; "ratio" = higher is better)
//
// Flags:
//   --factor=F      mesh scale factor (default 0.12)
//   --snapshots=N   snapshots to ingest (default 16)
//   --scale=S       real seconds per modeled second (default 0.002)
//   --window=W      max_frontier_lag for the producer (default 4)
//   --quick         shorthand for --factor=0.06 --snapshots=8
//   --json=PATH     write metrics for tools/bench_diff
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/gbo.h"
#include "core/options.h"
#include "mesh/dataset_spec.h"
#include "mesh/snapshot_writer.h"
#include "sim/platform.h"
#include "sim/sim_env.h"
#include "workloads/block_schema.h"
#include "workloads/ingest.h"
#include "workloads/platform_runtime.h"
#include "workloads/snapshot_io.h"

namespace godiva::bench {
namespace {

using workloads::FrontierWatch;
using workloads::IngestOptions;
using workloads::IngestProducer;
using workloads::SnapshotUnitName;

const std::vector<std::string> kQuantities = {"stress", "velx"};

struct Flags {
  double factor = 0.12;
  int snapshots = 16;
  double scale = 0.002;
  int window = 4;
  std::string json_path;

  static Flags Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--factor=", 9) == 0) {
        flags.factor = std::atof(arg + 9);
      } else if (std::strncmp(arg, "--snapshots=", 12) == 0) {
        flags.snapshots = std::atoi(arg + 12);
      } else if (std::strncmp(arg, "--scale=", 8) == 0) {
        flags.scale = std::atof(arg + 8);
      } else if (std::strncmp(arg, "--window=", 9) == 0) {
        flags.window = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.factor = 0.06;
        flags.snapshots = 8;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    return flags;
  }
};

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

// Percentiles over a sample vector, via the shared bench recorder.
double Percentile(const std::vector<double>& samples, double p) {
  LatencyRecorder recorder;
  recorder.RecordAll(samples);
  return recorder.Percentile(p);
}

GboOptions DbOptions() {
  GboOptions options;  // background_io = true
  options.io_threads = 2;
  return options;
}

// One timed demand cycle: add the unit, wait for its load, unpin, drop it.
// Returns milliseconds from request to data resident.
double DemandLoadMs(Gbo* db, const std::string& name,
                    const Gbo::ReadFn& read_fn,
                    const std::vector<std::string>& files) {
  Stopwatch stopwatch;
  Check(db->AddUnit(name, read_fn, files), "demand AddUnit");
  Check(db->WaitUnit(name), "demand WaitUnit");
  double ms = stopwatch.ElapsedSeconds() * 1e3;
  Check(db->FinishUnit(name), "demand FinishUnit");
  Check(db->DeleteUnit(name), "demand DeleteUnit");
  return ms;
}

// Baseline phase: the dataset already exists on disk and nothing else is
// running — pure demand load latency per snapshot.
std::vector<double> QuietDemandPhase(const mesh::DatasetSpec& spec,
                                     double scale) {
  SimEnv env{SimEnv::Options{}};
  auto dataset = mesh::WriteSnapshotDataset(&env, spec, "cold");
  Check(dataset.status(), "write cold dataset");
  workloads::PlatformRuntime runtime(PlatformProfile::Engle(), scale, &env);

  Gbo db(DbOptions());
  Check(workloads::DefineBlockSchema(&db), "define schema");
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &*dataset, kQuantities, workloads::SnapshotReadOptions{});
  std::vector<double> demand_ms;
  for (int s = 0; s < spec.num_snapshots; ++s) {
    demand_ms.push_back(DemandLoadMs(&db, SnapshotUnitName(s), read_fn,
                                     dataset->SnapshotFiles(s)));
  }
  return demand_ms;
}

struct IngestResult {
  std::vector<double> lag_s;        // publish-to-ready per snapshot
  std::vector<double> demand_ms;    // demand reloads under live ingest
  double stall_s = 0;
  double producer_wall_s = 0;
  double consumer_wall_s = 0;
  double frontier_wait_s = 0;       // consumer time blocked on the watch
  double mem_peak_frac = 0;
};

// Live phase: producer streams snapshots while the consumer follows the
// frontier, touches every arrival, acks it, and issues a demand reload of
// the previous snapshot to measure read service under ingest load.
IngestResult LiveIngestPhase(const mesh::DatasetSpec& spec,
                             const Flags& flags) {
  SimEnv env{SimEnv::Options{}};
  workloads::PlatformRuntime runtime(PlatformProfile::Engle(), flags.scale,
                                     &env);
  mesh::SnapshotDataset dataset =
      mesh::DescribeSnapshotDataset(spec, "live");

  GboOptions db_options = DbOptions();
  Gbo db(db_options);
  Check(workloads::DefineBlockSchema(&db), "define schema");
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &dataset, kQuantities, workloads::SnapshotReadOptions{});

  IngestOptions options;
  options.max_frontier_lag = flags.window;
  options.quantities = kQuantities;
  IngestProducer producer(&runtime, &db, &dataset, options);
  FrontierWatch watch(&db);

  IngestResult result;
  Stopwatch clock;  // shared time base for every thread in this phase
  std::atomic<bool> producer_done{false};

  std::thread producer_thread([&] {
    Stopwatch wall;
    Check(producer.Run(), "producer run");
    result.producer_wall_s = wall.ElapsedSeconds();
    producer_done.store(true);
  });

  // Publish timestamps, sampled: the frontier is polled a few times per
  // millisecond and each newly published snapshot is stamped on first
  // sight.
  std::vector<double> publish_time(
      static_cast<size_t>(spec.num_snapshots), -1.0);
  std::thread sampler([&] {
    int seen = -1;
    while (!producer_done.load()) {
      int frontier = producer.frontier();
      for (int s = seen + 1; s <= frontier; ++s) {
        publish_time[static_cast<size_t>(s)] = clock.ElapsedSeconds();
      }
      seen = std::max(seen, frontier);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Stopwatch consumer_wall;
  for (int s = 0; s < spec.num_snapshots; ++s) {
    Stopwatch wait;
    Check(watch.WaitForSnapshot(s, std::chrono::seconds(300)),
          "frontier wait");
    result.frontier_wait_s += wait.ElapsedSeconds();
    double ready_at = clock.ElapsedSeconds();
    if (publish_time[static_cast<size_t>(s)] >= 0) {
      result.lag_s.push_back(ready_at - publish_time[static_cast<size_t>(s)]);
    }
    Check(db.WaitUnit(SnapshotUnitName(s)), "consumer WaitUnit");
    auto record =
        db.FindRecord(workloads::kBlockRecordType, workloads::BlockKey(0, s));
    Check(record.status(), "consumer FindRecord");
    Check(db.FinishUnit(SnapshotUnitName(s)), "consumer FinishUnit");
    producer.AckFinished(s);

    // Demand reload of the previous (already consumed and acked) snapshot
    // while ingest is still running.
    if (s > 0 && s < spec.num_snapshots - 1) {
      std::string prev = SnapshotUnitName(s - 1);
      Check(db.DeleteUnit(prev), "drop previous");
      result.demand_ms.push_back(
          DemandLoadMs(&db, prev, read_fn, dataset.SnapshotFiles(s - 1)));
    }
  }
  result.consumer_wall_s = consumer_wall.ElapsedSeconds();
  producer_thread.join();
  sampler.join();

  Check(db.CheckInvariants(), "audit");
  result.stall_s = producer.stats().stall_seconds;
  GboStats stats = db.stats();
  result.mem_peak_frac =
      static_cast<double>(stats.peak_memory_bytes) /
      static_cast<double>(db_options.memory_limit_bytes);
  return result;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  mesh::DatasetSpec spec = mesh::DatasetSpec::TitanIVScaled(flags.factor);
  spec.num_snapshots = flags.snapshots;
  std::printf("bench_ingest: factor %.2f, %d snapshots, window %d, "
              "time scale %.4f\n",
              flags.factor, flags.snapshots, flags.window, flags.scale);

  std::vector<double> quiet_ms = QuietDemandPhase(spec, flags.scale);
  IngestResult live = LiveIngestPhase(spec, flags);

  double lag_p50 = Percentile(live.lag_s, 0.50);
  double lag_p99 = Percentile(live.lag_s, 0.99);
  double quiet_p99 = Percentile(quiet_ms, 0.99);
  double ingest_p99 = Percentile(live.demand_ms, 0.99);

  // Producer/consumer concurrency: the fraction of the shorter side's
  // active (non-blocked) time that overlapped the other side's.
  double wall = std::max(live.producer_wall_s, live.consumer_wall_s);
  double producer_active = live.producer_wall_s - live.stall_s;
  double consumer_active = live.consumer_wall_s - live.frontier_wait_s;
  double shorter = std::min(producer_active, consumer_active);
  double overlap = 0;
  if (shorter > 0) {
    overlap = (producer_active + consumer_active - wall) / shorter;
    overlap = std::max(0.0, std::min(1.0, overlap));
  }

  std::printf("frontier lag: p50 %.4fs, p99 %.4fs over %zu snapshots\n",
              lag_p50, lag_p99, live.lag_s.size());
  std::printf("producer: wall %.3fs, stalled %.3fs; consumer: wall %.3fs, "
              "waiting %.3fs; overlap ratio %.2f\n",
              live.producer_wall_s, live.stall_s, live.consumer_wall_s,
              live.frontier_wait_s, overlap);
  std::printf("demand p99: quiet %.2fms, under ingest %.2fms; peak memory "
              "%.1f%% of limit\n",
              quiet_p99, ingest_p99, 100.0 * live.mem_peak_frac);

  BenchJson json("bench_ingest");
  json.Add("frontier_lag_p50_s", lag_p50);
  json.Add("frontier_lag_p99_s", lag_p99);
  json.Add("stall_s", live.stall_s);
  json.Add("demand_p99_noingest_ms", quiet_p99);
  json.Add("demand_p99_ingest_ms", ingest_p99);
  json.Add("mem_peak_frac", live.mem_peak_frac);
  json.Add("io_overlap_ratio", overlap);
  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
