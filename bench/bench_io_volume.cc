// Reproduces the §4.2 I/O-volume analysis: "by using the GODIVA database,
// the volume of reads can be reduced by approximately 14%, 24%, and 16%,
// in the simple, medium, and complex tests respectively". Runs O and G
// with instant timing (volumes and request counts only), so it is exact
// and fast at full dataset scale.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "sim/platform.h"
#include "workloads/experiment.h"
#include "workloads/report.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::Variant;
using workloads::VizTestSpec;

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  // Volumes are timing-independent: use a near-instant scale.
  flags.scale = 1e-7;
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("I/O volume: original Voyager (O) vs single-thread GODIVA "
              "(G), §4.2\n");
  PrintDatasetBanner(**experiment);

  const double kPaperReduction[] = {14.0, 24.0, 16.0};
  PlatformProfile engle = PlatformProfile::Engle();
  workloads::PrintHeader("per-test read volumes (whole run)");
  std::printf("  %-8s %14s %14s %10s %10s %12s\n", "test", "O bytes",
              "G bytes", "O reads", "G reads", "reduction");
  int index = 0;
  for (const VizTestSpec& test : VizTestSpec::AllThree()) {
    auto o = (*experiment)->RunCell(engle, test, Variant::kOriginal);
    auto g =
        (*experiment)->RunCell(engle, test, Variant::kGodivaSingleThread);
    if (!o.ok() || !g.ok()) {
      std::fprintf(stderr, "cell failed\n");
      return 1;
    }
    double reduction = workloads::PercentReduction(
        static_cast<double>(o->last.bytes_read),
        static_cast<double>(g->last.bytes_read));
    std::printf("  %-8s %14s %14s %10lld %10lld %10.1f%%\n",
                test.name.c_str(), FormatBytes(o->last.bytes_read).c_str(),
                FormatBytes(g->last.bytes_read).c_str(),
                static_cast<long long>(o->last.reads),
                static_cast<long long>(g->last.reads), reduction);
    workloads::PrintComparison(StrCat("volume reduction, ", test.name),
                               kPaperReduction[index++], reduction);
    // Per-snapshot input volume (the paper reports 19.2/30.1/16.6 MB for
    // simple/medium/complex).
    double per_snapshot_mb =
        static_cast<double>(o->last.bytes_read) /
        (1e6 * (*experiment)->options().spec.num_snapshots);
    std::printf("  per-snapshot input (O): %.1f MB   (paper: %s MB)\n",
                per_snapshot_mb,
                test.name == "simple"
                    ? "19.2"
                    : (test.name == "medium" ? "30.1" : "16.6"));
  }
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
