// Declarative batch-query API vs unit-at-a-time loading (DESIGN.md §15).
// The workload is a sliding snapshot window over the paper's 120-block
// mesh: each step needs two stress fields for every block of snapshots
// [t, t+W), plus a displacement-magnitude derived field. Both paths read
// the same quantities from the same dataset through the same pool width:
//
//   unit-at-a-time — one unit per snapshot (MakeSnapshotReadFn), one
//     device read per dataset, window reuse via the unit cache.
//   query         — one GboQuery per step (BuildSnapshotQuery): plan-time
//     dedup against the resident tail of the previous window, per-file
//     extents coalesced into ReadBatch runs, and the derived field pushed
//     down onto each unit as it lands.
//
// Headline metrics: issued device reads and bytes per path (exact DiskStats
// counts), the read-op saving ratio (acceptance: >= 25% fewer, i.e. ratio
// >= 1.33), plan dedup hits and bytes saved (acceptance: > 0), push-down
// computations, and per-step settle latency p50/p99 (the demand-latency
// guard: the query path must not be slower to make a window ready).
//
// Flags: --factor=F, --snapshots=N, --window=W, --quick
// (factor 0.12, 8 snapshots), --sim-mode=M (see bench_util.h; the
// discrete-event run writes the bench_query_de JSON namespace with exact
// virtual-clock latencies), --json=PATH for tools/bench_diff.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread.h"
#include "core/gbo.h"
#include "core/options.h"
#include "core/query.h"
#include "core/server.h"
#include "core/session.h"
#include "core/stats.h"
#include "mesh/dataset_spec.h"
#include "sim/platform.h"
#include "sim/sim_env.h"
#include "viz/pushdown.h"
#include "workloads/block_schema.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/serving.h"
#include "workloads/snapshot_io.h"
#include "workloads/snapshot_query.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::ExperimentOptions;
using workloads::PlatformRuntime;

struct Flags {
  double factor = 1.0;
  int snapshots = 12;
  int window = 4;
  std::string sim_mode;
  std::string json_path;

  static Flags Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--factor=", 9) == 0) {
        flags.factor = std::atof(arg + 9);
      } else if (std::strncmp(arg, "--snapshots=", 12) == 0) {
        flags.snapshots = std::atoi(arg + 12);
      } else if (std::strncmp(arg, "--window=", 9) == 0) {
        flags.window = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--sim-mode=", 11) == 0) {
        flags.sim_mode = arg + 11;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.factor = 0.12;
        flags.snapshots = 8;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    if (flags.window < 1 || flags.window > flags.snapshots) {
      std::fprintf(stderr, "--window must be in [1, --snapshots]\n");
      std::exit(2);
    }
    return flags;
  }
};

// The two requested fields; the disp_mag kernel folds dispx/y/z into the
// same plan, so both paths read the five-quantity union.
const char* const kFields[] = {"sxx", "syy"};
const char* const kUnionQuantities[] = {"sxx", "syy", "dispx", "dispy",
                                        "dispz"};

GboOptions DbOptions() {
  GboOptions options;
  options.io_threads = 2;
  options.memory_limit_bytes = 512 * 1024 * 1024;  // window stays resident
  return options;
}

struct PathResult {
  int64_t reads = 0;
  int64_t bytes = 0;
  LatencyRecorder plan_ms;   // query path: BuildSnapshotQuery + Submit
  LatencyRecorder step_ms;   // time until the whole window is ready
  int64_t units_requested = 0;  // query path: planner expansion total
  int64_t dedup_hits = 0;       // query path: resident + in-flight
  GboStats stats;
};

// Unit-at-a-time baseline: one unit per snapshot, per-dataset reads, the
// trailing snapshot dropped as the window slides.
bool RunUnitPath(PlatformRuntime* runtime, const mesh::SnapshotDataset& ds,
                 const Flags& flags, PathResult* out) {
  Gbo db(DbOptions());
  if (!workloads::DefineBlockSchema(&db).ok()) return false;
  std::vector<std::string> quantities(std::begin(kUnionQuantities),
                                      std::end(kUnionQuantities));
  Gbo::ReadFn read_fn =
      workloads::MakeSnapshotReadFn(runtime, &ds, quantities);

  runtime->env()->ResetStats();
  int next_to_add = 0;
  for (int t = 0; t + flags.window <= flags.snapshots; ++t) {
    Stopwatch step;
    for (; next_to_add < t + flags.window; ++next_to_add) {
      Status added = db.AddUnit(workloads::SnapshotUnitName(next_to_add),
                                read_fn, ds.SnapshotFiles(next_to_add));
      if (!added.ok()) {
        std::fprintf(stderr, "AddUnit: %s\n", added.ToString().c_str());
        return false;
      }
    }
    for (int s = t; s < t + flags.window; ++s) {
      Status wait = db.WaitUnit(workloads::SnapshotUnitName(s));
      if (!wait.ok()) {
        std::fprintf(stderr, "WaitUnit: %s\n", wait.ToString().c_str());
        return false;
      }
    }
    out->step_ms.Record(step.ElapsedSeconds() * 1e3);
    // Snapshot t leaves the window (paper §3.2: batch mode knows it will
    // not be revisited).
    if (!db.DeleteUnit(workloads::SnapshotUnitName(t)).ok()) return false;
  }
  DiskStats disk = runtime->env()->stats();
  out->reads = disk.reads;
  out->bytes = disk.bytes_read;
  out->stats = db.stats();
  return true;
}

// Query path: one declarative window query per step; plan-time dedup
// against the previous window's resident tail, batched per-file I/O, and
// the derived field pushed down as each unit lands.
bool RunQueryPath(PlatformRuntime* runtime,
                  const mesh::SnapshotDataset& ds, const Flags& flags,
                  PathResult* out, int64_t* derived_values) {
  Gbo db(DbOptions());
  if (!workloads::DefineBlockSchema(&db).ok()) return false;
  QueryPlanner planner(&db);
  // Overlapping windows re-plan the same files; the extents cache keeps
  // the repeat directory reads off the device.
  workloads::SnapshotExtentsCache extents_cache;

  runtime->env()->ResetStats();
  for (int t = 0; t + flags.window <= flags.snapshots; ++t) {
    workloads::SnapshotQueryOptions options;
    options.extents_cache = &extents_cache;
    options.fields.assign(std::begin(kFields), std::end(kFields));
    options.kernels.push_back(viz::MagnitudeKernel("disp_mag", "disp"));
    // Merge only truly adjacent extents: the requested fields already sit
    // next to each other on disk, so a zero gap allowance keeps the byte
    // volume identical to the per-dataset baseline while the seek count
    // collapses (the demand-latency guard below must hold in the modeled
    // disk, where gap bytes are not free).
    options.limits.max_gap = 0;
    options.snapshot_begin = t;
    options.snapshot_end = t + flags.window;
    Stopwatch plan_time;
    auto query = workloads::BuildSnapshotQuery(runtime, &ds, options);
    if (!query.ok()) {
      std::fprintf(stderr, "BuildSnapshotQuery: %s\n",
                   query.status().ToString().c_str());
      return false;
    }
    auto ticket = planner.Submit(*std::move(query));
    if (!ticket.ok()) {
      std::fprintf(stderr, "Submit: %s\n",
                   ticket.status().ToString().c_str());
      return false;
    }
    out->plan_ms.Record(plan_time.ElapsedSeconds() * 1e3);
    out->units_requested += (*ticket)->plan().units_requested;
    out->dedup_hits +=
        (*ticket)->plan().dedup_resident + (*ticket)->plan().dedup_in_flight;
    Stopwatch step;
    Status wait = (*ticket)->WaitAll();
    if (!wait.ok()) {
      std::fprintf(stderr, "WaitAll: %s\n", wait.ToString().c_str());
      return false;
    }
    out->step_ms.Record(step.ElapsedSeconds() * 1e3);
    for (const DerivedResult& derived : (*ticket)->TakeDerived()) {
      *derived_values += static_cast<int64_t>(derived.values.size());
    }
    if (!(*ticket)->FinishAll().ok()) return false;
    // Drop the snapshot leaving the window; the rest stays resident for
    // the next step's plan to dedup against.
    for (int f = 0; f < ds.spec.files_per_snapshot; ++f) {
      Status dropped =
          db.DeleteUnit(workloads::SnapshotFileUnitName(t, f));
      if (!dropped.ok()) {
        std::fprintf(stderr, "DeleteUnit: %s\n",
                     dropped.ToString().c_str());
        return false;
      }
    }
  }
  DiskStats disk = runtime->env()->stats();
  out->reads = disk.reads;
  out->bytes = disk.bytes_read;
  out->stats = db.stats();
  return true;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const SimMode mode = ResolveSimMode(flags.sim_mode);
  std::printf("bench_query: 2 fields + disp_mag pushdown, window %d over "
              "%d snapshots, %s mode\n",
              flags.window, flags.snapshots, SimModeName(mode));
  BenchJson json(mode == SimMode::kDiscreteEvent ? "bench_query_de"
                                                 : "bench_query");

  // Generate the dataset once (instant writes into the owned SimEnv);
  // both paths replay reads against the same files and disk model.
  ExperimentOptions experiment_options;
  experiment_options.spec =
      (flags.factor >= 1.0) ? mesh::DatasetSpec::TitanIV()
                            : mesh::DatasetSpec::TitanIVScaled(flags.factor);
  experiment_options.spec.num_snapshots = flags.snapshots;
  experiment_options.time_scale = 1e-6;  // counts are timing-independent
  experiment_options.sim_mode = mode;
  auto experiment = Experiment::Create(experiment_options);
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  PrintDatasetBanner(**experiment);
  const mesh::SnapshotDataset& dataset = (*experiment)->dataset();
  const PlatformProfile profile = PlatformProfile::Engle();

  PathResult unit;
  {
    auto scope = MakeSimScope(mode);
    PlatformRuntime runtime(profile, experiment_options.time_scale,
                            (*experiment)->env(), mode);
    if (!RunUnitPath(&runtime, dataset, flags, &unit)) return 1;
  }

  PathResult query;
  int64_t derived_values = 0;
  {
    auto scope = MakeSimScope(mode);
    PlatformRuntime runtime(profile, experiment_options.time_scale,
                            (*experiment)->env(), mode);
    if (!RunQueryPath(&runtime, dataset, flags, &query, &derived_values)) {
      return 1;
    }
  }

  std::printf("  %-14s %10s %12s %10s %10s\n", "path", "reads", "bytes",
              "p50(ms)", "p99(ms)");
  auto row = [](const char* name, const PathResult& r) {
    std::printf("  %-14s %10lld %12s %10.3f %10.3f\n", name,
                static_cast<long long>(r.reads),
                FormatBytes(r.bytes).c_str(), r.step_ms.Percentile(0.50),
                r.step_ms.Percentile(0.99));
  };
  row("unit-at-a-time", unit);
  row("query", query);

  const double ratio =
      query.reads > 0
          ? static_cast<double>(unit.reads) / static_cast<double>(query.reads)
          : 0;
  const double reduction_pct =
      unit.reads > 0 ? 100.0 * (1.0 - static_cast<double>(query.reads) /
                                          static_cast<double>(unit.reads))
                     : 0;
  const GboStats& plan = query.stats;
  // What the queries asked for vs what reached the device: the dedup'd
  // payload never left the cache.
  const int64_t bytes_requested = query.bytes + plan.plan_bytes_saved;
  const double dedup_ratio =
      query.units_requested > 0
          ? static_cast<double>(query.dedup_hits) /
                static_cast<double>(query.units_requested)
          : 0;
  std::printf("  read ops: %.1f%% fewer via the query plan (ratio %.2fx; "
              "acceptance: >= 25%%) -> %s\n",
              reduction_pct, ratio, reduction_pct >= 25.0 ? "PASS" : "FAIL");
  std::printf("  plan: p50 %.3fms p99 %.3fms, %lld batches, dedup %lld/%lld "
              "units (ratio %.3f), %s requested -> %s issued (%s saved; "
              "acceptance: > 0) -> %s\n",
              query.plan_ms.Percentile(0.50), query.plan_ms.Percentile(0.99),
              static_cast<long long>(plan.plan_batches_issued),
              static_cast<long long>(query.dedup_hits),
              static_cast<long long>(query.units_requested), dedup_ratio,
              FormatBytes(bytes_requested).c_str(),
              FormatBytes(query.bytes).c_str(),
              FormatBytes(plan.plan_bytes_saved).c_str(),
              plan.plan_bytes_saved > 0 ? "PASS" : "FAIL");
  std::printf("  pushdown: %lld computations (%lld derived values)\n",
              static_cast<long long>(plan.pushdown_computations),
              static_cast<long long>(derived_values));
  std::printf("  demand p99 (window settle): query %.3fms vs unit "
              "%.3fms -> %s\n",
              query.step_ms.Percentile(0.99), unit.step_ms.Percentile(0.99),
              query.step_ms.Percentile(0.99) <=
                      unit.step_ms.Percentile(0.99) * 1.05
                  ? "PASS"
                  : "FAIL");

  // DE only: the 500-session batch sweep. Every session submits one
  // 8-unit planned batch set through the serving layer's batch lane and
  // awaits settle — DRR grant scheduling at populations the scaled mode
  // could never host, measured on the exact virtual clock.
  if (mode == SimMode::kDiscreteEvent) {
    std::printf("batch sweep (discrete event, 8-unit batch sets):\n");
    std::printf("  %8s %12s %12s %12s\n", "sessions", "settle p50",
                "settle p99", "granted");
    for (int sessions : {100, 500}) {
      auto scope = MakeSimScope(mode);
      GboOptions sweep_options;
      sweep_options.io_threads = 4;
      sweep_options.metadata_shards = 4;
      sweep_options.memory_limit_bytes = 256 * 1024 * 1024;
      Gbo db(sweep_options);
      if (!workloads::EnsureServingSchema(&db).ok()) return 1;
      ServerOptions server_options;
      server_options.max_inflight_demand = 32;
      GboServer server(&db, server_options);
      constexpr int kBatchUnits = 8;
      LatencyRecorder settle;
      std::mutex settle_mu;
      std::atomic<int64_t> granted{0};
      std::atomic<bool> failed{false};
      {
        std::vector<Thread> clients;
        clients.reserve(static_cast<size_t>(sessions));
        for (int i = 0; i < sessions; ++i) {
          clients.emplace_back([&, i] {
            SessionConfig config;
            config.name = StrCat("batch-", i);
            config.max_queued_demand = kBatchUnits;
            auto session = server.OpenSession(config);
            if (!session.ok()) {
              failed.store(true);
              return;
            }
            std::vector<SessionBatchRequest> set;
            for (int u = 0; u < kBatchUnits; ++u) {
              SessionBatchRequest request;
              request.unit_name = StrCat("sweep/", i, "/", u);
              request.read_fn = workloads::ServingReadFn(
                  16 * 1024, std::chrono::microseconds(300));
              set.push_back(std::move(request));
            }
            Stopwatch wait;
            if (!(*session)->SubmitBatchSet(std::move(set)).ok()) {
              failed.store(true);
              return;
            }
            std::vector<double> samples;
            for (int u = 0; u < kBatchUnits; ++u) {
              Status settled = (*session)->AwaitBatchSettle(
                  StrCat("sweep/", i, "/", u), nullptr);
              if (!settled.ok()) {
                failed.store(true);
                return;
              }
              samples.push_back(wait.ElapsedSeconds() * 1e3);
            }
            granted.fetch_add((*session)->stats().batch_granted);
            std::lock_guard<std::mutex> lock(settle_mu);
            settle.RecordAll(samples);
          });
        }
        for (Thread& client : clients) client.join();
      }
      if (failed.load()) {
        std::fprintf(stderr, "%d-session batch sweep failed\n", sessions);
        return 1;
      }
      double sweep_p50 = settle.Percentile(0.50);
      double sweep_p99 = settle.Percentile(0.99);
      std::printf("  %8d %12.3f %12.3f %12lld\n", sessions, sweep_p50,
                  sweep_p99, static_cast<long long>(granted.load()));
      std::string prefix = StrFormat("de_batch_sessions_%d_", sessions);
      json.Add(prefix + "settle_p50_ms", sweep_p50);
      json.Add(prefix + "settle_p99_ms", sweep_p99);
      json.Add(prefix + "granted", static_cast<double>(granted.load()));
    }
  }

  json.Add("unit_reads", static_cast<double>(unit.reads));
  json.Add("unit_mib", static_cast<double>(unit.bytes) / (1024.0 * 1024.0));
  json.Add("query_reads", static_cast<double>(query.reads));
  json.Add("query_mib",
           static_cast<double>(query.bytes) / (1024.0 * 1024.0));
  json.Add("bytes_requested_mib",
           static_cast<double>(bytes_requested) / (1024.0 * 1024.0));
  json.Add("read_ops_saved_ratio", ratio);
  json.Add("dedup_hit_ratio", dedup_ratio);
  json.Add("plan_p50_ms", query.plan_ms.Percentile(0.50));
  json.Add("plan_p99_ms", query.plan_ms.Percentile(0.99));
  json.Add("plan_dedup_hits", static_cast<double>(plan.plan_dedup_hits));
  json.Add("plan_batches_issued",
           static_cast<double>(plan.plan_batches_issued));
  json.Add("plan_bytes_saved_mib",
           static_cast<double>(plan.plan_bytes_saved) / (1024.0 * 1024.0));
  json.Add("pushdown_computations",
           static_cast<double>(plan.pushdown_computations));
  json.Add("unit_step_p99_ms", unit.step_ms.Percentile(0.99));
  json.Add("query_step_p99_ms", query.step_ms.Percentile(0.99));
  if (!json.WriteTo(flags.json_path)) return 1;
  return (reduction_pct >= 25.0 && plan.plan_bytes_saved > 0) ? 0 : 1;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
