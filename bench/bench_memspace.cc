// Ablation (DESIGN.md §3, decision 3): database memory budget
// (setMemSpace). The paper argues the memory requirement "is similar to
// that of the traditional double buffering approach": one extra unit of
// headroom already enables overlap, and more memory deepens prefetch.
// Sweeps the budget from below one unit (deadlock risk) to the paper's
// 384 MB and reports visible I/O and deadlocks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/options.h"
#include "sim/platform.h"
#include "workloads/block_schema.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/report.h"
#include "workloads/snapshot_io.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::PlatformRuntime;
using workloads::RunConfig;
using workloads::Variant;
using workloads::VizTestSpec;

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.factor >= 1.0) flags.factor = 0.35;
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Ablation: GODIVA memory budget (setMemSpace), TG on Engle, "
              "simple test\n");
  PrintDatasetBanner(**experiment);

  // Estimate one unit's footprint: run one TG cell with a huge budget and
  // read the peak with a single unit resident... simpler: derive from the
  // dataset spec (mesh + 4 quantities + record overhead).
  const mesh::DatasetSpec& spec = (*experiment)->options().spec;
  int64_t unit_bytes =
      static_cast<int64_t>(spec.ExpectedNodes() * 1.05 * 8) * 7 +
      spec.ExpectedTets() * 16 + spec.num_blocks * 1024;

  workloads::PrintHeader("memory budget sweep");
  std::printf("  %-14s %12s %16s %10s %10s\n", "budget", "total(s)",
              "visible I/O(s)", "evictions", "deadlocks");
  struct Budget {
    const char* label;
    double units;
  };
  const Budget kBudgets[] = {
      {"0.5 units", 0.5}, {"1.2 units", 1.2},  {"2.2 units", 2.2},
      {"4 units", 4.0},   {"8 units", 8.0},    {"all (384MB)", -1.0},
  };
  for (const Budget& budget : kBudgets) {
    PlatformRuntime runtime(PlatformProfile::Engle(),
                            (*experiment)->options().time_scale,
                            (*experiment)->env());
    RunConfig config;
    config.dataset = &(*experiment)->dataset();
    config.test = VizTestSpec::Simple();
    config.variant = Variant::kGodivaMultiThread;
    config.process = (*experiment)->options().process;
    config.godiva_memory_bytes =
        budget.units < 0
            ? int64_t{384} * 1024 * 1024
            : static_cast<int64_t>(budget.units *
                                   static_cast<double>(unit_bytes));
    auto cell = RunVoyager(&runtime, config);
    if (!cell.ok()) {
      // With less than one unit of memory the run may abort with the
      // deadlock status — that is the expected behaviour to demonstrate.
      std::printf("  %-14s %12s %16s %10s %10s  (%s)\n", budget.label, "-",
                  "-", "-", "-", cell.status().ToString().c_str());
      continue;
    }
    std::printf("  %-14s %12.1f %16.1f %10lld %10lld\n", budget.label,
                cell->total_seconds, cell->visible_io_seconds,
                static_cast<long long>(cell->gbo.units_evicted),
                static_cast<long long>(cell->gbo.deadlocks_detected));
  }
  std::printf("  (≈2 units ≈ classic double buffering: most of the "
              "benefit; ≤1 unit forfeits all overlap)\n");

  // Deadlock detection (paper §3.3): a negligent application that never
  // finishes or deletes processed units pins everything; once the budget
  // is exhausted the prefetch thread can make no progress and GODIVA must
  // fail the blocked wait rather than hang.
  workloads::PrintHeader("deadlock detection with unreleased units");
  {
    PlatformRuntime runtime(PlatformProfile::Engle(),
                            (*experiment)->options().time_scale,
                            (*experiment)->env());
    GboOptions options;
    options.memory_limit_bytes = 3 * unit_bytes;
    Gbo db(options);
    Status status = workloads::DefineBlockSchema(&db);
    Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
        &runtime, &(*experiment)->dataset(),
        VizTestSpec::Simple().AllQuantities());
    const mesh::DatasetSpec& ds = (*experiment)->options().spec;
    for (int s = 0; s < ds.num_snapshots && status.ok(); ++s) {
      status = db.AddUnit(workloads::SnapshotUnitName(s), read_fn);
    }
    int processed = 0;
    for (int s = 0; s < ds.num_snapshots && status.ok(); ++s) {
      status = db.WaitUnit(workloads::SnapshotUnitName(s));
      if (status.ok()) ++processed;  // ... and neglects FinishUnit/DeleteUnit
    }
    std::printf("  budget 3 units, no Finish/DeleteUnit: processed %d of "
                "%d snapshots, then: %s\n",
                processed, ds.num_snapshots, status.ToString().c_str());
    std::printf("  deadlocks detected by GODIVA: %lld\n",
                static_cast<long long>(db.stats().deadlocks_detected));
  }
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
