// Reproduces Figure 3(b) of the paper: Voyager running time on one Turing
// cluster node (two CPUs) for the simple/medium/complex tests under O, G,
// TG1 (multi-thread GODIVA with a competing compute-bound process pinning
// the second CPU) and TG2 (multi-thread GODIVA alone). Also prints the
// §4.2 derived metrics: single-thread I/O time reductions, the 81.1–90.8%
// hidden-I/O range, and the up-to-93/90/95% total input cost reductions.
#include <cstdio>
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/platform.h"
#include "workloads/experiment.h"
#include "workloads/report.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace godiva::bench {
namespace {

using workloads::AggregatedCell;
using workloads::BarRow;
using workloads::Experiment;
using workloads::Variant;
using workloads::VizTestSpec;

struct Cell {
  std::string label;  // O / G / TG1 / TG2
  Variant variant;
  bool competitor;
};

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Figure 3(b): Voyager running time on a Turing cluster node (2 "
      "CPUs)\n");
  PrintDatasetBanner(**experiment);

  PlatformProfile turing = PlatformProfile::Turing();
  const Cell kCells[] = {
      {"O", Variant::kOriginal, false},
      {"G", Variant::kGodivaSingleThread, false},
      {"TG1", Variant::kGodivaMultiThread, true},
      {"TG2", Variant::kGodivaMultiThread, false},
  };
  std::vector<BarRow> rows;
  std::map<std::string, std::map<std::string, AggregatedCell>> cells;
  for (const VizTestSpec& test : VizTestSpec::AllThree()) {
    for (const Cell& cell_spec : kCells) {
      auto cell = (*experiment)
                      ->RunCell(turing, test, cell_spec.variant,
                                cell_spec.competitor);
      if (!cell.ok()) {
        std::fprintf(stderr, "cell failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      rows.push_back(BarRow{StrCat(test.name, "(", cell_spec.label, ")"),
                            cell->computation_seconds,
                            cell->visible_io_seconds});
      cells[test.name][cell_spec.label] = *cell;
      workloads::PrintResilience(cell->last);
      workloads::PrintPoolStats(cell->last);
    }
  }
  workloads::PrintFigure("Figure 3(b) — Turing cluster node", rows);

  BenchJson json("bench_fig3b");
  for (const auto& [test_name, labels] : cells) {
    for (const auto& [label, cell] : labels) {
      std::string prefix = StrCat(test_name, "_", label);
      json.Add(StrCat(prefix, "_total_s"), cell.total_seconds.mean);
      json.Add(StrCat(prefix, "_visible_io_s"),
               cell.visible_io_seconds.mean);
    }
  }
  if (!json.WriteTo(flags.json_path)) return 1;

  struct PaperRow {
    const char* test;
    double io_time_reduction;        // G vs O
    double max_total_input_reduction;  // best of TG1/TG2 vs O
  };
  const PaperRow kPaper[] = {
      {"simple", 16.0, 93.2},
      {"medium", 30.0, 90.3},
      {"complex", 10.7, 94.7},
  };
  workloads::PrintHeader("Derived metrics vs paper (§4.2, Turing)");
  double min_hidden = 1e9;
  double max_hidden = -1e9;
  for (const PaperRow& paper : kPaper) {
    const AggregatedCell& o = cells[paper.test]["O"];
    const AggregatedCell& g = cells[paper.test]["G"];
    workloads::PrintComparison(
        StrCat("I/O time reduction (O vs G), ", paper.test),
        paper.io_time_reduction,
        workloads::PercentReduction(o.visible_io_seconds.mean,
                                    g.visible_io_seconds.mean));
    double best_total = 1e300;
    for (const char* tg : {"TG1", "TG2"}) {
      const AggregatedCell& cell = cells[paper.test][tg];
      double hidden = 100.0 *
                      (g.total_seconds.mean - cell.total_seconds.mean) /
                      g.visible_io_seconds.mean;
      min_hidden = std::min(min_hidden, hidden);
      max_hidden = std::max(max_hidden, hidden);
      best_total = std::min(best_total, cell.total_seconds.mean);
    }
    workloads::PrintComparison(
        StrCat("max total input cost reduction, ", paper.test),
        paper.max_total_input_reduction,
        100.0 * (o.total_seconds.mean - best_total) /
            o.visible_io_seconds.mean);
  }
  std::printf(
      "  hidden I/O fraction across all TG1/TG2 cells: paper 81.1%%–90.8%%"
      "  measured %.1f%%–%.1f%%\n",
      min_hidden, max_hidden);
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
