// Reproduces Figure 3(a) of the paper: Voyager running time on the Engle
// workstation (one CPU) for the simple/medium/complex tests under the
// original implementation (O), single-thread GODIVA (G), and multi-thread
// GODIVA (TG) — plus the §4.2 derived metrics (I/O volume reduction, I/O
// time reduction, hidden-I/O fraction, total input-cost reduction).
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/platform.h"
#include "workloads/experiment.h"
#include "workloads/report.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace godiva::bench {
namespace {

using workloads::AggregatedCell;
using workloads::BarRow;
using workloads::Experiment;
using workloads::Variant;
using workloads::VizTestSpec;

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Figure 3(a): Voyager running time on Engle (1 CPU)\n");
  PrintDatasetBanner(**experiment);

  PlatformProfile engle = PlatformProfile::Engle();
  const Variant kVariants[] = {Variant::kOriginal,
                               Variant::kGodivaSingleThread,
                               Variant::kGodivaMultiThread};
  std::vector<BarRow> rows;
  // cells[test][variant]
  std::map<std::string, std::map<std::string, AggregatedCell>> cells;
  for (const VizTestSpec& test : VizTestSpec::AllThree()) {
    for (Variant variant : kVariants) {
      auto cell = (*experiment)->RunCell(engle, test, variant);
      if (!cell.ok()) {
        std::fprintf(stderr, "cell failed: %s\n",
                     cell.status().ToString().c_str());
        return 1;
      }
      std::string label =
          StrCat(test.name, "(", workloads::VariantName(variant), ")");
      rows.push_back(BarRow{label, cell->computation_seconds,
                            cell->visible_io_seconds});
      cells[test.name][std::string(workloads::VariantName(variant))] =
          *cell;
      workloads::PrintResilience(cell->last);
      workloads::PrintPoolStats(cell->last);
    }
  }
  workloads::PrintFigure("Figure 3(a) — Engle workstation", rows);

  BenchJson json("bench_fig3a");
  for (const auto& [test_name, variants] : cells) {
    for (const auto& [variant_name, cell] : variants) {
      std::string prefix = StrCat(test_name, "_", variant_name);
      json.Add(StrCat(prefix, "_total_s"), cell.total_seconds.mean);
      json.Add(StrCat(prefix, "_visible_io_s"),
               cell.visible_io_seconds.mean);
      json.Add(StrCat(prefix, "_bytes_read_mib"),
               static_cast<double>(cell.last.bytes_read) / (1024.0 * 1024.0));
    }
  }
  if (!json.WriteTo(flags.json_path)) return 1;

  // §4.2 derived metrics, paper values in comments/rows.
  struct PaperRow {
    const char* test;
    double volume_reduction;
    double io_time_reduction;
    double hidden_fraction;
    double total_input_reduction;
  };
  const PaperRow kPaper[] = {
      {"simple", 14.0, 17.6, 24.7, 40.9},
      {"medium", 24.0, 37.2, 33.1, 60.5},
      {"complex", 16.0, 20.1, 37.8, 61.9},
  };
  workloads::PrintHeader("Derived metrics vs paper (§4.2, Engle)");
  for (const PaperRow& paper : kPaper) {
    const AggregatedCell& o = cells[paper.test]["O"];
    const AggregatedCell& g = cells[paper.test]["G"];
    const AggregatedCell& tg = cells[paper.test]["TG"];
    workloads::PrintComparison(
        StrCat("I/O volume reduction, ", paper.test),
        paper.volume_reduction,
        workloads::PercentReduction(
            static_cast<double>(o.last.bytes_read),
            static_cast<double>(g.last.bytes_read)));
    workloads::PrintComparison(
        StrCat("I/O time reduction (O vs G), ", paper.test),
        paper.io_time_reduction,
        workloads::PercentReduction(o.visible_io_seconds.mean,
                                    g.visible_io_seconds.mean));
    workloads::PrintComparison(
        StrCat("I/O cost hidden (G vs TG), ", paper.test),
        paper.hidden_fraction,
        100.0 * (g.total_seconds.mean - tg.total_seconds.mean) /
            g.visible_io_seconds.mean);
    workloads::PrintComparison(
        StrCat("total input cost reduction (O vs TG), ", paper.test),
        paper.total_input_reduction,
        100.0 * (o.total_seconds.mean - tg.total_seconds.mean) /
            o.visible_io_seconds.mean);
  }
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
