// Shared helpers for the benchmark harnesses: tiny flag parsing and
// experiment construction. Every harness accepts:
//   --factor=F      mesh scale factor (default 1.0 = the paper's mesh)
//   --snapshots=N   snapshots to process (default 32, as in the paper)
//   --scale=S       real seconds per modeled second (default 0.02)
//   --reps=R        repetitions per cell (paper used 5; default 1)
//   --stride=K      real feature extraction on every Kth block (default 16)
//   --quick         shorthand for --factor=0.12 --snapshots=8
//   --sim-mode=M    "de"/"discrete-event" replays modeled delays on the
//                   discrete-event virtual clock (deterministic, wall-time
//                   free); "scaled" (default) compresses them onto the
//                   wall clock. Empty falls back to GODIVA_SIM_MODE.
//   --json=PATH     also write the headline metrics as JSON (for
//                   tools/bench_diff regression tracking)
#ifndef GODIVA_BENCH_BENCH_UTIL_H_
#define GODIVA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "mesh/dataset_spec.h"
#include "sim/event_scheduler.h"
#include "sim/virtual_time.h"
#include "workloads/experiment.h"

namespace godiva::bench {

// Resolves a --sim-mode flag value; an empty flag defers to the
// GODIVA_SIM_MODE environment variable (so CI can flip whole bench jobs
// without touching their command lines).
inline SimMode ResolveSimMode(const std::string& flag) {
  if (flag.empty()) return SimModeFromEnv();
  if (flag == "de" || flag == "discrete" || flag == "discrete-event") {
    return SimMode::kDiscreteEvent;
  }
  if (flag == "scaled" || flag == "scaled-sleep") {
    return SimMode::kScaledSleep;
  }
  std::fprintf(stderr, "unknown --sim-mode value: %s\n", flag.c_str());
  std::exit(2);
}

// Opens a DiscreteEventScope when `mode` calls for one. The harness holds
// the returned handle across every run the scope must cover (all
// godiva::Threads spawned inside it must join before it is released);
// null in scaled mode, where no scope is needed.
inline std::unique_ptr<DiscreteEventScope> MakeSimScope(SimMode mode) {
  if (mode != SimMode::kDiscreteEvent) return nullptr;
  return std::make_unique<DiscreteEventScope>();
}

struct BenchFlags {
  double factor = 1.0;
  int snapshots = 32;
  double scale = 0.02;
  int reps = 1;
  int stride = 16;
  std::string sim_mode;   // empty = GODIVA_SIM_MODE (see ResolveSimMode)
  std::string json_path;  // empty = no JSON output

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--factor=", 9) == 0) {
        flags.factor = std::atof(arg + 9);
      } else if (std::strncmp(arg, "--snapshots=", 12) == 0) {
        flags.snapshots = std::atoi(arg + 12);
      } else if (std::strncmp(arg, "--scale=", 8) == 0) {
        flags.scale = std::atof(arg + 8);
      } else if (std::strncmp(arg, "--reps=", 7) == 0) {
        flags.reps = std::atoi(arg + 7);
      } else if (std::strncmp(arg, "--stride=", 9) == 0) {
        flags.stride = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--sim-mode=", 11) == 0) {
        flags.sim_mode = arg + 11;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.factor = 0.12;
        flags.snapshots = 8;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    return flags;
  }

  workloads::ExperimentOptions ToOptions() const {
    workloads::ExperimentOptions options;
    options.spec = (factor >= 1.0)
                       ? mesh::DatasetSpec::TitanIV()
                       : mesh::DatasetSpec::TitanIVScaled(factor);
    options.spec.num_snapshots = snapshots;
    options.time_scale = scale;
    options.repetitions = reps;
    options.sim_mode = ResolveSimMode(sim_mode);
    options.process.real_work_stride = stride;
    return options;
  }
};

// Latency-sample accumulator shared by the bench harnesses. Percentiles
// use linear interpolation over rank p * (n - 1) — the convention every
// harness has reported since bench_ingest introduced it, so numbers stay
// comparable across benches and baselines.
class LatencyRecorder {
 public:
  void Record(double sample) { samples_.push_back(sample); }
  void RecordAll(const std::vector<double>& samples) {
    samples_.insert(samples_.end(), samples.begin(), samples.end());
  }

  size_t count() const { return samples_.size(); }

  // 0 on an empty recorder; p in [0, 1].
  double Percentile(double p) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  double Mean() const {
    if (samples_.empty()) return 0;
    double sum = 0;
    for (double sample : samples_) sum += sample;
    return sum / static_cast<double>(samples_.size());
  }

  double Max() const {
    double max = 0;
    for (double sample : samples_) max = std::max(max, sample);
    return max;
  }

 private:
  std::vector<double> samples_;
};

// The short git SHA the benchmark binary is running against, so a
// regression in a bench JSON can be traced to the commit that produced it.
// Sources, in order: the GODIVA_GIT_SHA environment variable (CI sets it
// from the checkout, which also covers builds from an exported tarball),
// then `git rev-parse` in the current directory, then "unknown".
inline std::string CurrentGitSha() {
  if (const char* env = std::getenv("GODIVA_GIT_SHA");
      env != nullptr && *env != '\0') {
    return env;
  }
  std::string sha;
  if (std::FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null",
                                "r")) {
    char buffer[64];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      sha = buffer;
      while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
        sha.pop_back();
      }
    }
    ::pclose(pipe);
  }
  return sha.empty() ? "unknown" : sha;
}

// The current wall-clock time as ISO-8601 UTC ("2026-08-06T12:34:56Z").
inline std::string UtcTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

// Collects named scalar metrics and writes them as the flat JSON document
// tools/bench_diff consumes:
//   {"bench": "bench_fig3a", "git_sha": "1a2b3c4d5e6f",
//    "timestamp_utc": "2026-08-06T12:34:56Z",
//    "metrics": {"simple_O_total_s": 413.7, ...}}
// git_sha/timestamp_utc record which commit produced the numbers and when;
// bench_diff carries them into baselines and names the offending commit
// when it reports a regression. Metric names should be stable across runs;
// values are doubles. Insertion order is preserved so diffs of the files
// stay readable.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)),
        git_sha_(CurrentGitSha()),
        timestamp_utc_(UtcTimestamp()) {}

  void Add(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  // Writes the document to `path` ("" = no-op). Returns false on I/O
  // failure (after printing a diagnostic): benches treat that as fatal so
  // CI never diffs against a half-written file.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                 "  \"timestamp_utc\": \"%s\",\n  \"metrics\": {\n",
                 bench_name_.c_str(), git_sha_.c_str(),
                 timestamp_utc_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(out, "    \"%s\": %.6g%s\n", metrics_[i].first.c_str(),
                   metrics_[i].second,
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    bool ok = std::fclose(out) == 0;
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string bench_name_;
  std::string git_sha_;
  std::string timestamp_utc_;
  std::vector<std::pair<std::string, double>> metrics_;
};

inline void PrintDatasetBanner(const workloads::Experiment& experiment) {
  const mesh::DatasetSpec& spec = experiment.options().spec;
  std::printf(
      "dataset: %lld nodes, %lld tets, %d blocks, %d files/snapshot, "
      "%d snapshots, %s on (simulated) disk\n",
      static_cast<long long>(spec.ExpectedNodes()),
      static_cast<long long>(spec.ExpectedTets()), spec.num_blocks,
      spec.files_per_snapshot, spec.num_snapshots,
      FormatBytes(experiment.dataset().total_bytes).c_str());
}

}  // namespace godiva::bench

#endif  // GODIVA_BENCH_BENCH_UTIL_H_
