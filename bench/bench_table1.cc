// Reproduces Table 1 and Figure 2 of the paper: defines the sample "fluid"
// record type for a 2-D structured mesh block, creates the record instance
// from Figure 2 (100×100 grid: 101 coordinates per direction, 10,000
// elements with pressure and temperature), and prints both.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.h"
#include "common/types.h"
#include "core/gbo.h"
#include "core/key_util.h"
#include "core/options.h"
#include "core/record.h"

namespace godiva::bench {
namespace {

using godiva::Gbo;

Status Run() {
  Gbo db(GboOptions::WithMemoryMb(16));

  // Table 1 field definitions, verbatim from §3.1.
  struct FieldRow {
    const char* name;
    DataType type;
    int64_t size;
  };
  const FieldRow kTable1[] = {
      {"block ID", DataType::kString, 11},
      {"time-step ID", DataType::kString, 9},
      {"x coordinates", DataType::kFloat64, kUnknownSize},
      {"y coordinates", DataType::kFloat64, kUnknownSize},
      {"gas pressure", DataType::kFloat64, kUnknownSize},
      {"gas temperature", DataType::kFloat64, kUnknownSize},
  };
  for (const FieldRow& row : kTable1) {
    GODIVA_RETURN_IF_ERROR(db.DefineField(row.name, row.type, row.size));
  }
  GODIVA_RETURN_IF_ERROR(db.DefineRecord("fluid", 2));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "block ID", true));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "time-step ID", true));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "x coordinates", false));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "y coordinates", false));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "gas pressure", false));
  GODIVA_RETURN_IF_ERROR(db.InsertField("fluid", "gas temperature", false));
  GODIVA_RETURN_IF_ERROR(db.CommitRecordType("fluid"));

  std::printf(
      "Table 1: sample field types in a record type for a fluid data "
      "block\n\n");
  std::printf("  %-18s %-8s %-11s %s\n", "field name", "type",
              "buffer size", "key?");
  for (const FieldRow& row : kTable1) {
    std::string size_text =
        row.size == kUnknownSize ? "UNKNOWN" : StrCat(row.size);
    bool is_key = std::strncmp(row.name, "block", 5) == 0 ||
                  std::strncmp(row.name, "time", 4) == 0;
    std::printf("  %-18s %-8s %-11s %s\n", row.name,
                std::string(DataTypeName(row.type)).c_str(),
                size_text.c_str(), is_key ? "yes" : "no");
  }

  // Figure 2: the record instance.
  GODIVA_ASSIGN_OR_RETURN(Record * record, db.NewRecord("fluid"));
  std::memcpy(*record->FieldBuffer("block ID"),
              PadKey("block_0001$", 11).data(), 11);
  std::memcpy(*record->FieldBuffer("time-step ID"),
              PadKey("0.000025$", 9).data(), 9);
  GODIVA_RETURN_IF_ERROR(
      db.AllocFieldBuffer(record, "x coordinates", 101 * 8).status());
  GODIVA_RETURN_IF_ERROR(
      db.AllocFieldBuffer(record, "y coordinates", 101 * 8).status());
  GODIVA_RETURN_IF_ERROR(
      db.AllocFieldBuffer(record, "gas pressure", 10000 * 8).status());
  GODIVA_RETURN_IF_ERROR(
      db.AllocFieldBuffer(record, "gas temperature", 10000 * 8).status());
  GODIVA_RETURN_IF_ERROR(db.CommitRecord(record));

  std::printf(
      "\nFigure 2: record instance for a 100x100 structured mesh block\n"
      "(101 coordinates per direction, 10,000 elements)\n\n");
  std::printf("  %-18s %8s   %s\n", "field", "size", "buffer");
  for (const FieldRow& row : kTable1) {
    GODIVA_ASSIGN_OR_RETURN(int64_t size, record->FieldBufferSize(row.name));
    GODIVA_ASSIGN_OR_RETURN(void* buffer, record->FieldBuffer(row.name));
    std::printf("  %-18s %8lld   %p\n", row.name,
                static_cast<long long>(size), buffer);
  }

  // And the paper's example query: "give me the address of the pressure
  // data buffer of the block with ID block_0001$ from the time-step with
  // ID 0.000025$".
  GODIVA_ASSIGN_OR_RETURN(
      void* pressure,
      db.GetFieldBuffer("fluid", "gas pressure",
                        {PadKey("block_0001$", 11), PadKey("0.000025$", 9)}));
  std::printf("\nkey lookup getFieldBuffer(\"fluid\", \"gas pressure\", "
              "{block_0001$, 0.000025$}) -> %p\n",
              pressure);
  std::printf("\n%s\n", db.stats().ToString().c_str());
  return Status::Ok();
}

}  // namespace
}  // namespace godiva::bench

int main() {
  godiva::Status status = godiva::bench::Run();
  if (!status.ok()) {
    std::fprintf(stderr, "failed: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
