// Extension benchmark: speculative prefetching for interactive mode
// (paper §5 — GODIVA as a building block for the Doshi-style prefetching
// of visual data exploration). Replays scripted interactive sessions and
// compares per-view response time with plain foreground reads (the paper's
// interactive baseline, readUnit only) against the InteractivePrefetcher.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/interactive_prefetcher.h"
#include "core/options.h"
#include "sim/platform.h"
#include "workloads/block_schema.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/report.h"
#include "workloads/snapshot_io.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::PlatformRuntime;

struct SessionResult {
  double mean_response_seconds = 0;
  double worst_response_seconds = 0;
  int64_t memory_hits = 0;
};

std::vector<int> ForwardScan(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

std::vector<int> SweepBackAndForth(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  for (int i = n - 2; i >= 0; --i) out.push_back(i);
  return out;
}

Result<SessionResult> Replay(Experiment* experiment,
                             const std::vector<int>& session,
                             bool speculative,
                             double think_modeled_seconds) {
  PlatformRuntime runtime(PlatformProfile::Engle(),
                          experiment->options().time_scale,
                          experiment->env());
  Gbo db;  // background thread available for speculation
  GODIVA_RETURN_IF_ERROR(workloads::DefineBlockSchema(&db));
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &experiment->dataset(), {"velx", "vely", "velz"});
  InteractivePrefetcher::Options options;
  options.num_items = experiment->options().spec.num_snapshots;
  options.lookahead = 2;
  InteractivePrefetcher prefetcher(&db, options,
                                   workloads::SnapshotUnitName, read_fn);

  SessionResult result;
  double total = 0;
  for (int index : session) {
    Stopwatch response;
    if (speculative) {
      GODIVA_RETURN_IF_ERROR(prefetcher.Access(index));
    } else {
      GODIVA_RETURN_IF_ERROR(
          db.ReadUnit(workloads::SnapshotUnitName(index), read_fn));
    }
    double seconds = response.ElapsedSeconds() / runtime.scale().scale();
    total += seconds;
    result.worst_response_seconds =
        std::max(result.worst_response_seconds, seconds);
    // The user studies the image: the speculation window.
    runtime.ChargeCompute(think_modeled_seconds);
    if (speculative) {
      GODIVA_RETURN_IF_ERROR(prefetcher.Release(index));
    } else {
      GODIVA_RETURN_IF_ERROR(
          db.FinishUnit(workloads::SnapshotUnitName(index)));
    }
  }
  result.mean_response_seconds =
      total / static_cast<double>(session.size());
  result.memory_hits = speculative ? prefetcher.stats().memory_hits
                                   : db.stats().unit_cache_hits;
  return result;
}

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.factor >= 1.0) flags.factor = 0.3;
  if (flags.snapshots > 16) flags.snapshots = 16;
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Extension: speculative interactive prefetching (§5 / "
              "Doshi-style, built on the GODIVA interfaces)\n");
  PrintDatasetBanner(**experiment);

  struct SessionSpec {
    const char* label;
    std::vector<int> session;
  };
  int n = (*experiment)->options().spec.num_snapshots;
  const SessionSpec kSessions[] = {
      {"forward scan", ForwardScan(n)},
      {"sweep back and forth", SweepBackAndForth(n)},
  };
  workloads::PrintHeader("per-view response time (modeled seconds)");
  std::printf("  %-22s %-14s %10s %10s %8s\n", "session", "mode", "mean",
              "worst", "hits");
  for (const SessionSpec& spec : kSessions) {
    for (bool speculative : {false, true}) {
      auto result = Replay(experiment->get(), spec.session, speculative,
                           /*think_modeled_seconds=*/6.0);
      if (!result.ok()) {
        std::fprintf(stderr, "replay failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-22s %-14s %9.2fs %9.2fs %8lld\n", spec.label,
                  speculative ? "speculative" : "readUnit only",
                  result->mean_response_seconds,
                  result->worst_response_seconds,
                  static_cast<long long>(result->memory_hits));
    }
  }
  std::printf("  (speculation hides reads behind user think time; the "
              "sweep also benefits from plain caching on the way back)\n");
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
