// google-benchmark micro-benchmarks for the GODIVA core: record-operation
// and key-lookup costs (the in-memory database operations on the critical
// path of every read function and every data-processing query).
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/gbo.h"
#include "core/key_util.h"
#include "core/options.h"
#include "core/record.h"

namespace godiva {
namespace {

std::unique_ptr<Gbo> MakeDb() {
  auto db = std::make_unique<Gbo>(GboOptions::SingleThread());
  Status s = db->DefineField("id", DataType::kInt64, 8);
  s = db->DefineField("payload", DataType::kFloat64, kUnknownSize);
  s = db->DefineRecord("r", 1);
  s = db->InsertField("r", "id", true);
  s = db->InsertField("r", "payload", false);
  s = db->CommitRecordType("r");
  (void)s;
  return db;
}

void InsertRecords(Gbo* db, int64_t count, int64_t payload_bytes) {
  for (int64_t i = 0; i < count; ++i) {
    Record* rec = *db->NewRecord("r");
    std::memcpy(*rec->FieldBuffer("id"), &i, 8);
    (void)*db->AllocFieldBuffer(rec, "payload", payload_bytes);
    (void)db->CommitRecord(rec);
  }
}

void BM_NewRecordCommit(benchmark::State& state) {
  int64_t payload = state.range(0);
  std::unique_ptr<Gbo> db = MakeDb();
  int64_t i = 0;
  for (auto _ : state) {
    Record* rec = *db->NewRecord("r");
    std::memcpy(*rec->FieldBuffer("id"), &i, 8);
    benchmark::DoNotOptimize(*db->AllocFieldBuffer(rec, "payload", payload));
    Status s = db->CommitRecord(rec);
    benchmark::DoNotOptimize(s);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NewRecordCommit)->Arg(64)->Arg(8192)->Arg(65536);

void BM_KeyLookup(benchmark::State& state) {
  int64_t records = state.range(0);
  std::unique_ptr<Gbo> db = MakeDb();
  InsertRecords(db.get(), records, 64);
  int64_t i = 0;
  for (auto _ : state) {
    int64_t key = i++ % records;
    auto buffer = db->GetFieldBuffer("r", "payload", {KeyBytes(key)});
    benchmark::DoNotOptimize(buffer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_KeyLookupMiss(benchmark::State& state) {
  std::unique_ptr<Gbo> db = MakeDb();
  InsertRecords(db.get(), 10000, 64);
  int64_t missing = 1 << 30;
  for (auto _ : state) {
    auto buffer = db->GetFieldBuffer("r", "payload", {KeyBytes(missing)});
    benchmark::DoNotOptimize(buffer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyLookupMiss);

void BM_FieldBufferByHandle(benchmark::State& state) {
  // Direct buffer access through a record handle (what the processing
  // loop does once per field per block).
  std::unique_ptr<Gbo> db = MakeDb();
  InsertRecords(db.get(), 1, 8192);
  Record* rec = *db->FindRecord("r", {KeyBytes(int64_t{0})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(*rec->FieldBuffer("payload"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldBufferByHandle);

void BM_WaitUnitCacheHit(benchmark::State& state) {
  // WaitUnit on an already-resident unit: the interactive revisit path.
  Gbo db(GboOptions::SingleThread());
  Status s = db.DefineField("id", DataType::kInt64, 8);
  s = db.DefineRecord("r", 1);
  s = db.InsertField("r", "id", true);
  s = db.CommitRecordType("r");
  s = db.ReadUnit("u", [](Gbo* g, const std::string&) -> Status {
    auto rec = g->NewRecord("r");
    int64_t id = 1;
    std::memcpy(*(*rec)->FieldBuffer("id"), &id, 8);
    return g->CommitRecord(*rec);
  });
  (void)s;
  for (auto _ : state) {
    Status wait = db.WaitUnit("u");
    benchmark::DoNotOptimize(wait);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaitUnitCacheHit);

void BM_UnitRoundTrip(benchmark::State& state) {
  // Full unit lifecycle: ReadUnit (foreground, n records) + DeleteUnit.
  int64_t records = state.range(0);
  std::unique_ptr<Gbo> db = MakeDb();
  for (auto _ : state) {
    Status s = db->ReadUnit(
        "u", [records](Gbo* g, const std::string&) -> Status {
          for (int64_t i = 0; i < records; ++i) {
            GODIVA_ASSIGN_OR_RETURN(Record * rec, g->NewRecord("r"));
            std::memcpy(*rec->FieldBuffer("id"), &i, 8);
            GODIVA_RETURN_IF_ERROR(
                g->AllocFieldBuffer(rec, "payload", 4096).status());
            GODIVA_RETURN_IF_ERROR(g->CommitRecord(rec));
          }
          return Status::Ok();
        });
    benchmark::DoNotOptimize(s);
    s = db->DeleteUnit("u");
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_UnitRoundTrip)->Arg(16)->Arg(256);

}  // namespace
}  // namespace godiva

BENCHMARK_MAIN();
