// Multi-client concurrency benchmark for the sharded Gbo metadata path
// (DESIGN.md §10): M client threads hammer key lookups and unit cache hits
// over a fully warm database, with the metadata striped across 1 vs 8
// shards. The headline scaling ratios divide the 1-shard wall time by the
// 8-shard wall time at M threads — on a multi-core machine the 8-shard
// configuration should win by ≥3× at 8 threads; on a single core the
// ratio is ~1 (there is no parallelism to unlock, only unchanged
// single-stream cost, which the *_t1_* metrics pin down).
//
// Flags:
//   --threads=M   client threads for the contended phases (default 8)
//   --records=N   keyed records in the warm database (default 4096)
//   --ops=N       lookups per thread per phase (default 200000)
//   --shards=S    pin one shard count instead of sweeping {1, 8}
//   --quick       shorthand for --records=1024 --ops=100000
//   --json=PATH   write metrics for tools/bench_diff
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/types.h"
#include "core/gbo.h"
#include "core/key_util.h"
#include "core/options.h"
#include "core/record.h"

namespace godiva::bench {
namespace {

constexpr int kUnits = 64;
constexpr int64_t kPayloadBytes = 64;

struct Flags {
  int threads = 8;
  int records = 4096;
  int ops = 200000;
  int shards = 0;  // 0 = sweep {1, 8}
  std::string json_path;

  static Flags Parse(int argc, char** argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--threads=", 10) == 0) {
        flags.threads = std::atoi(arg + 10);
      } else if (std::strncmp(arg, "--records=", 10) == 0) {
        flags.records = std::atoi(arg + 10);
      } else if (std::strncmp(arg, "--ops=", 6) == 0) {
        flags.ops = std::atoi(arg + 6);
      } else if (std::strncmp(arg, "--shards=", 9) == 0) {
        flags.shards = std::atoi(arg + 9);
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        flags.json_path = arg + 7;
      } else if (std::strcmp(arg, "--quick") == 0) {
        flags.records = 1024;
        flags.ops = 100000;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg);
        std::exit(2);
      }
    }
    return flags;
  }
};

std::string UnitName(int i) { return "u" + std::to_string(i); }

// Deterministic per-thread generator — cheap enough that the benchmark
// measures the database, not the RNG.
struct XorShift {
  uint64_t state;
  explicit XorShift(uint64_t seed) : state(seed * 0x9e3779b97f4a7c15ULL | 1) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// Builds a warm database: kUnits units, each read function committing its
// slice of `records` int64-keyed records. Every unit ends Ready and
// finished, so the hit phase exercises the pin/unpin LRU path.
Status Populate(Gbo* db, int records) {
  GODIVA_RETURN_IF_ERROR(db->DefineField("key", DataType::kInt64, 8));
  GODIVA_RETURN_IF_ERROR(
      db->DefineField("val", DataType::kFloat64, kUnknownSize));
  GODIVA_RETURN_IF_ERROR(db->DefineRecord("point", 1));
  GODIVA_RETURN_IF_ERROR(db->InsertField("point", "key", true));
  GODIVA_RETURN_IF_ERROR(db->InsertField("point", "val", false));
  GODIVA_RETURN_IF_ERROR(db->CommitRecordType("point"));

  int per_unit = (records + kUnits - 1) / kUnits;
  for (int u = 0; u < kUnits; ++u) {
    int64_t first = static_cast<int64_t>(u) * per_unit;
    int64_t last = std::min<int64_t>(first + per_unit, records);
    auto read_fn = [first, last](Gbo* gbo, const std::string&) -> Status {
      for (int64_t k = first; k < last; ++k) {
        GODIVA_ASSIGN_OR_RETURN(Record * rec, gbo->NewRecord("point"));
        std::memcpy(*rec->FieldBuffer("key"), &k, sizeof(k));
        GODIVA_ASSIGN_OR_RETURN(
            void* val, gbo->AllocFieldBuffer(rec, "val", kPayloadBytes));
        static_cast<double*>(val)[0] = static_cast<double>(k);
        GODIVA_RETURN_IF_ERROR(gbo->CommitRecord(rec));
      }
      return Status::Ok();
    };
    GODIVA_RETURN_IF_ERROR(db->ReadUnit(UnitName(u), read_fn));
    GODIVA_RETURN_IF_ERROR(db->FinishUnit(UnitName(u)));
  }
  return Status::Ok();
}

// Runs `threads` copies of `body(thread_index)` and returns the wall time
// of the whole fan-out in seconds.
template <typename Body>
double TimedFanOut(int threads, const Body& body) {
  Stopwatch stopwatch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&body, t] { body(t); });
  }
  for (std::thread& worker : workers) worker.join();
  return stopwatch.ElapsedSeconds();
}

// Phase 1/2: key lookups. `zipf_cdf` empty = uniform random keys;
// otherwise keys are drawn from the precomputed zipfian CDF (a handful of
// hot keys absorb most lookups — the worst case for a striped index,
// since the hot keys' shards stay contended).
double LookupPhase(Gbo* db, int threads, int ops, int records,
                   const std::vector<double>& zipf_cdf,
                   std::atomic<int64_t>* errors) {
  return TimedFanOut(threads, [&](int t) {
    XorShift rng(static_cast<uint64_t>(t) + 1);
    for (int i = 0; i < ops; ++i) {
      int64_t key;
      if (zipf_cdf.empty()) {
        key = static_cast<int64_t>(rng.Next() % static_cast<uint64_t>(records));
      } else {
        double u = static_cast<double>(rng.Next() >> 11) * 0x1p-53;
        key = static_cast<int64_t>(
            std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
            zipf_cdf.begin());
        if (key >= records) key = records - 1;
      }
      auto buffer = db->GetFieldBuffer("point", "val", {KeyBytes(key)});
      if (!buffer.ok() ||
          static_cast<double*>(*buffer)[0] != static_cast<double>(key)) {
        errors->fetch_add(1);
      }
    }
  });
}

// Phase 3: unit cache hits — WaitUnit (pin) + FinishUnit (unpin) cycles
// against resident units: the per-shard LRU touch path.
double HitPhase(Gbo* db, int threads, int ops,
                std::atomic<int64_t>* errors) {
  return TimedFanOut(threads, [&](int t) {
    XorShift rng(static_cast<uint64_t>(t) + 101);
    for (int i = 0; i < ops; ++i) {
      std::string name =
          UnitName(static_cast<int>(rng.Next() % kUnits));
      if (!db->WaitUnit(name).ok() || !db->FinishUnit(name).ok()) {
        errors->fetch_add(1);
      }
    }
  });
}

struct ShardResult {
  double lookup_t1_s = 0;  // 1 thread, uniform keys
  double lookup_tm_s = 0;  // M threads, uniform keys
  double zipf_tm_s = 0;    // M threads, zipfian keys
  double hit_tm_s = 0;     // M threads, WaitUnit/FinishUnit cycles
};

ShardResult RunConfiguration(const Flags& flags, int shards,
                             const std::vector<double>& zipf_cdf) {
  GboOptions options = GboOptions::SingleThread();
  options.metadata_shards = shards;
  Gbo db(options);
  Status populated = Populate(&db, flags.records);
  if (!populated.ok()) {
    std::fprintf(stderr, "populate failed: %s\n",
                 populated.ToString().c_str());
    std::exit(1);
  }

  std::atomic<int64_t> errors{0};
  ShardResult result;
  // Audits walk every record, so the hit phase (which runs them in debug
  // builds) uses a reduced op count to stay bounded there.
  int hit_ops = std::max(1000, flags.ops / 100);
  result.lookup_t1_s =
      LookupPhase(&db, 1, flags.ops, flags.records, {}, &errors);
  result.lookup_tm_s =
      LookupPhase(&db, flags.threads, flags.ops, flags.records, {}, &errors);
  result.zipf_tm_s = LookupPhase(&db, flags.threads, flags.ops,
                                 flags.records, zipf_cdf, &errors);
  result.hit_tm_s = HitPhase(&db, flags.threads, hit_ops, &errors);
  if (errors.load() != 0) {
    std::fprintf(stderr, "%lld lookup/hit errors with %d shards\n",
                 static_cast<long long>(errors.load()), shards);
    std::exit(1);
  }
  Status audit = db.CheckInvariants();
  if (!audit.ok()) {
    std::fprintf(stderr, "audit failed: %s\n", audit.ToString().c_str());
    std::exit(1);
  }

  auto mops = [&](double seconds, int threads, int ops) {
    return seconds > 0
               ? static_cast<double>(threads) * ops / seconds / 1e6
               : 0.0;
  };
  std::printf(
      "shards=%d: lookup t1 %.3fs (%.2f Mops/s), t%d %.3fs (%.2f Mops/s), "
      "zipf t%d %.3fs (%.2f Mops/s), hit t%d %.3fs (%.2f Mops/s)\n",
      shards, result.lookup_t1_s, mops(result.lookup_t1_s, 1, flags.ops),
      flags.threads, result.lookup_tm_s,
      mops(result.lookup_tm_s, flags.threads, flags.ops), flags.threads,
      result.zipf_tm_s, mops(result.zipf_tm_s, flags.threads, flags.ops),
      flags.threads, result.hit_tm_s,
      mops(result.hit_tm_s, flags.threads, hit_ops));
  return result;
}

int Run(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::printf("bench_concurrency: %d records over %d units, %d threads, "
              "%d ops/thread/phase, %u hardware threads\n",
              flags.records, kUnits, flags.threads, flags.ops,
              std::thread::hardware_concurrency());

  // Zipfian CDF, exponent 1.2 over record ranks (rank r gets weight
  // 1/(r+1)^1.2): a realistic hot-key skew for view-dependent lookups.
  std::vector<double> zipf_cdf(static_cast<size_t>(flags.records));
  double total = 0;
  for (int r = 0; r < flags.records; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r) + 1.0, 1.2);
    zipf_cdf[static_cast<size_t>(r)] = total;
  }
  for (double& value : zipf_cdf) value /= total;

  std::vector<int> shard_counts =
      flags.shards > 0 ? std::vector<int>{flags.shards}
                       : std::vector<int>{1, 8};
  std::map<int, ShardResult> results;
  for (int shards : shard_counts) {
    results[shards] = RunConfiguration(flags, shards, zipf_cdf);
  }

  BenchJson json("bench_concurrency");
  std::string tm = "t" + std::to_string(flags.threads);
  for (const auto& [shards, result] : results) {
    std::string suffix = "_s" + std::to_string(shards) + "_total_s";
    json.Add("lookup_t1" + suffix, result.lookup_t1_s);
    json.Add("lookup_" + tm + suffix, result.lookup_tm_s);
    json.Add("zipf_" + tm + suffix, result.zipf_tm_s);
    json.Add("hit_" + tm + suffix, result.hit_tm_s);
  }
  if (results.count(1) != 0 && results.count(8) != 0) {
    // Wall-time ratios (1 shard ÷ 8 shards at M threads): > 1 means the
    // striped locks win. "ratio" in the name flips bench_diff to
    // higher-is-better. Target on an ≥8-core machine: ≥ 3.
    auto ratio = [](double base, double sharded) {
      return sharded > 0 ? base / sharded : 0.0;
    };
    double lookup_ratio =
        ratio(results[1].lookup_tm_s, results[8].lookup_tm_s);
    double zipf_ratio = ratio(results[1].zipf_tm_s, results[8].zipf_tm_s);
    double hit_ratio = ratio(results[1].hit_tm_s, results[8].hit_tm_s);
    json.Add("lookup_scaling_ratio_s8_over_s1_" + tm, lookup_ratio);
    json.Add("zipf_scaling_ratio_s8_over_s1_" + tm, zipf_ratio);
    json.Add("hit_scaling_ratio_s8_over_s1_" + tm, hit_ratio);
    std::printf(
        "scaling at %d threads (1-shard time / 8-shard time): "
        "lookup %.2fx, zipf %.2fx, hit %.2fx\n",
        flags.threads, lookup_ratio, zipf_ratio, hit_ratio);
  }
  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
