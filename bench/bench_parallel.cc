// Reproduces the paper's parallel experiment (§4.2): "a series of parallel
// experiments on Turing using four Voyager processes", where Voyager
// "partitions its workload between processors by assigning different
// processors different snapshots to process" and "we expect the speedup
// brought by GODIVA in parallel mode to be similar to that obtained in our
// sequential mode tests ... this is confirmed".
//
// Each emulated process gets its own Turing node (own virtual CPUs and own
// disk replica of the dataset) and a round-robin quarter of the snapshots.
#include <cstdio>
#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/status.h"
#include "sim/platform.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/report.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace godiva::bench {
namespace {

using workloads::CellResult;
using workloads::Experiment;
using workloads::PlatformRuntime;
using workloads::RunConfig;
using workloads::Variant;
using workloads::VizTestSpec;

constexpr int kProcesses = 4;

struct ParallelOutcome {
  double makespan_seconds = 0;  // max process total (modeled)
  double visible_io_seconds = 0;  // max process visible I/O
  std::vector<double> process_total_seconds;  // one per process
};

Result<ParallelOutcome> RunParallel(Experiment* experiment,
                                    const VizTestSpec& test,
                                    Variant variant) {
  const mesh::DatasetSpec& spec = experiment->options().spec;
  std::vector<std::unique_ptr<SimEnv>> envs;
  for (int p = 0; p < kProcesses; ++p) {
    envs.push_back(experiment->env()->Clone(SimEnv::Options{}));
  }
  std::vector<Result<CellResult>> results(kProcesses,
                                          Result<CellResult>(CellResult{}));
  std::vector<std::thread> threads;
  for (int p = 0; p < kProcesses; ++p) {
    threads.emplace_back([&, p] {
      PlatformRuntime runtime(PlatformProfile::Turing(),
                              experiment->options().time_scale,
                              envs[static_cast<size_t>(p)].get());
      RunConfig config;
      config.dataset = &experiment->dataset();
      config.test = test;
      config.variant = variant;
      config.process = experiment->options().process;
      for (int s = p; s < spec.num_snapshots; s += kProcesses) {
        config.snapshots.push_back(s);
      }
      results[static_cast<size_t>(p)] = RunVoyager(&runtime, config);
    });
  }
  for (std::thread& thread : threads) thread.join();

  ParallelOutcome outcome;
  for (const Result<CellResult>& result : results) {
    if (!result.ok()) return result.status();
    outcome.makespan_seconds =
        std::max(outcome.makespan_seconds, result->total_seconds);
    outcome.visible_io_seconds =
        std::max(outcome.visible_io_seconds, result->visible_io_seconds);
    outcome.process_total_seconds.push_back(result->total_seconds);
  }
  return outcome;
}

// One sequential TG run on a modernized Turing node, `io_threads` pool
// threads, and per-file read coalescing. On the paper's 2003 hardware one
// I/O thread keeps up with the app, so a pool buys nothing; this profile
// models the post-paper question the pool answers — CPUs got ~4× faster
// while shared-filesystem per-stream bandwidth did not, so the app is
// I/O-bound unless the storage's command queuing (queue_depth=4) is
// actually exercised by concurrent transfers.
Result<CellResult> RunPoolCell(Experiment* experiment,
                               const VizTestSpec& test, int io_threads) {
  PlatformProfile profile = PlatformProfile::Turing();
  profile.name = "turing-modern";
  profile.cpu_slots = 4;  // decode on pool threads needs CPU slots too
  profile.cpu_speed *= 4.0;
  profile.disk.bytes_per_second = 16.0 * 1024 * 1024;
  profile.disk.queue_depth = 4;
  std::unique_ptr<SimEnv> env =
      experiment->env()->Clone(SimEnv::Options{});
  PlatformRuntime runtime(profile, experiment->options().time_scale,
                          env.get());
  RunConfig config;
  config.dataset = &experiment->dataset();
  config.test = test;
  config.variant = Variant::kGodivaMultiThread;
  config.process = experiment->options().process;
  config.io_threads = io_threads;
  config.coalesce_reads = true;
  return RunVoyager(&runtime, config);
}

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.factor >= 1.0) flags.factor = 0.5;  // 4 dataset replicas in RAM
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Parallel Voyager: %d emulated processes on Turing nodes "
              "(§4.2)\n", kProcesses);
  PrintDatasetBanner(**experiment);

  BenchJson json("bench_parallel");
  workloads::PrintHeader("sequential vs 4-process, O vs TG");
  std::printf("  %-8s %16s %16s %10s %16s\n", "test", "seq total(s)",
              "par makespan(s)", "speedup", "GODIVA benefit");
  for (const VizTestSpec& test : VizTestSpec::AllThree()) {
    double seq_total[2];
    double par_total[2];
    LatencyRecorder proc_totals;  // per-process TG totals (load balance)
    int i = 0;
    for (Variant variant :
         {Variant::kOriginal, Variant::kGodivaMultiThread}) {
      auto seq = (*experiment)
                     ->RunCell(PlatformProfile::Turing(), test, variant);
      if (!seq.ok()) {
        std::fprintf(stderr, "seq cell failed: %s\n",
                     seq.status().ToString().c_str());
        return 1;
      }
      auto par = RunParallel(experiment->get(), test, variant);
      if (!par.ok()) {
        std::fprintf(stderr, "parallel cell failed: %s\n",
                     par.status().ToString().c_str());
        return 1;
      }
      seq_total[i] = seq->total_seconds.mean;
      par_total[i] = par->makespan_seconds;
      if (variant == Variant::kGodivaMultiThread) {
        proc_totals.RecordAll(par->process_total_seconds);
      }
      ++i;
    }
    // GODIVA benefit: total-time reduction O→TG, sequential vs parallel
    // (the paper expects these to be similar).
    double seq_benefit =
        workloads::PercentReduction(seq_total[0], seq_total[1]);
    double par_benefit =
        workloads::PercentReduction(par_total[0], par_total[1]);
    std::printf("  %-8s %9.1f/%-9.1f %9.1f/%-9.1f %5.2fx %9.1f%%/%5.1f%%\n",
                test.name.c_str(), seq_total[0], seq_total[1],
                par_total[0], par_total[1], seq_total[1] / par_total[1],
                seq_benefit, par_benefit);
    json.Add(StrCat(test.name, "_seq_total_O_s"), seq_total[0]);
    json.Add(StrCat(test.name, "_seq_total_TG_s"), seq_total[1]);
    json.Add(StrCat(test.name, "_par_makespan_O_s"), par_total[0]);
    json.Add(StrCat(test.name, "_par_makespan_TG_s"), par_total[1]);
    // Load balance across the 4 TG processes: median process total and
    // the straggler gap (makespan − median).
    json.Add(StrCat(test.name, "_par_proc_p50_TG_s"),
             proc_totals.Percentile(0.50));
    json.Add(StrCat(test.name, "_par_straggler_gap_TG_s"),
             proc_totals.Max() - proc_totals.Percentile(0.50));
  }
  std::printf("  (totals shown as O/TG; speedup is TG sequential vs TG "
              "4-process; paper expects parallel GODIVA benefit similar "
              "to sequential)\n");

  // ----- I/O pool scaling: 1/2/4 pool threads on queue_depth-4 storage.
  // Visible I/O is the headline: the ratio t1/t4 is the pool's payoff and
  // is tracked in BENCH_baseline.json.
  const VizTestSpec pool_test = VizTestSpec::AllThree()[0];  // simple
  workloads::PrintHeader(
      "I/O pool scaling (sequential TG, simple test, queue_depth=4)");
  std::printf("  %-10s %12s %15s %12s %10s\n", "io_threads", "total(s)",
              "visible I/O(s)", "coalesced", "queue hw");
  double pool_visible[3] = {0, 0, 0};
  const int kPoolThreads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    auto cell = RunPoolCell(experiment->get(), pool_test, kPoolThreads[i]);
    if (!cell.ok()) {
      std::fprintf(stderr, "pool cell failed: %s\n",
                   cell.status().ToString().c_str());
      return 1;
    }
    pool_visible[i] = cell->visible_io_seconds;
    std::printf("  %-10d %12.1f %15.1f %12lld %10lld\n", kPoolThreads[i],
                cell->total_seconds, cell->visible_io_seconds,
                static_cast<long long>(cell->gbo.coalesced_reads),
                static_cast<long long>(cell->gbo.queue_depth_high_water));
    std::string prefix = StrCat("pool_t", kPoolThreads[i]);
    json.Add(StrCat(prefix, "_total_s"), cell->total_seconds);
    json.Add(StrCat(prefix, "_visible_io_s"), cell->visible_io_seconds);
  }
  double pool_ratio =
      pool_visible[2] > 0 ? pool_visible[0] / pool_visible[2] : 0;
  std::printf("  visible I/O reduction, 1 -> 4 threads: %.2fx\n",
              pool_ratio);
  json.Add("pool_visible_io_ratio_t1_over_t4", pool_ratio);

  if (!json.WriteTo(flags.json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
