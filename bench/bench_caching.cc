// Ablation (DESIGN.md §3, decision 2): caching for interactive
// exploration. The paper motivates caching with interactive users who
// "frequently switch back and forth between snapshot images from two
// different time-steps" (§1) and interactive tools that mark processed
// units "finished" hoping for revisits (§3.2). This harness replays
// locality-bearing interactive sessions against LRU and FIFO eviction
// across cache sizes and reports hit rates and visible I/O time.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/options.h"
#include "sim/platform.h"
#include "workloads/block_schema.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/report.h"
#include "workloads/snapshot_io.h"
#include "workloads/test_spec.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::PlatformRuntime;

// An interactive session over `num_snapshots` time-steps: mostly small
// steps forward/backward plus frequent flips back to a reference snapshot
// — the paper's "switch back and forth" pattern.
std::vector<int> MakeSession(int num_snapshots, int touches,
                             uint64_t seed) {
  Random rng(seed);
  std::vector<int> session;
  int current = 0;
  const int reference = 0;  // the user keeps comparing against snapshot 0
  for (int i = 0; i < touches; ++i) {
    double dice = rng.NextDouble();
    if (dice < 0.40) {
      // Flip to the reference snapshot and back — the paper's "switch
      // back and forth between snapshot images from two different
      // time-steps". LRU keeps the hot reference resident; FIFO keeps
      // evicting it because it is the oldest read.
      session.push_back(reference);
      session.push_back(current);
    } else if (dice < 0.90) {
      current = std::min(num_snapshots - 1, current + 1);
      session.push_back(current);
    } else {
      current = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(num_snapshots)));
      session.push_back(current);
    }
  }
  return session;
}

struct CachingResult {
  double visible_io_seconds = 0;
  int64_t reads = 0;
  int64_t hits = 0;
  int64_t evictions = 0;
};

Result<CachingResult> RunSession(Experiment* experiment,
                                 const std::vector<int>& session,
                                 EvictionPolicy policy,
                                 int64_t memory_bytes,
                                 bool caching_enabled = true) {
  PlatformRuntime runtime(PlatformProfile::Engle(),
                          experiment->options().time_scale,
                          experiment->env());
  GboOptions options;
  options.background_io = false;  // interactive: explicit blocking reads
  options.eviction_policy = policy;
  options.memory_limit_bytes = memory_bytes;
  Gbo db(options);
  GODIVA_RETURN_IF_ERROR(workloads::DefineBlockSchema(&db));
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &experiment->dataset(), {"velx", "vely", "velz"});

  for (int snapshot : session) {
    std::string unit = workloads::SnapshotUnitName(snapshot);
    GODIVA_RETURN_IF_ERROR(db.ReadUnit(unit, read_fn));
    // Brief viewing computation, then mark finished (not deleted!) so the
    // data stays cached for revisits. Without caching, the unit is
    // deleted as soon as it has been viewed.
    runtime.ChargeCompute(0.5);
    if (caching_enabled) {
      GODIVA_RETURN_IF_ERROR(db.FinishUnit(unit));
    } else {
      GODIVA_RETURN_IF_ERROR(db.DeleteUnit(unit));
    }
  }
  CachingResult out;
  GboStats stats = db.stats();
  out.visible_io_seconds =
      stats.visible_io_seconds / runtime.scale().scale();
  out.reads = stats.units_read_foreground;
  out.hits = stats.unit_cache_hits;
  out.evictions = stats.units_evicted;
  return out;
}

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.factor >= 1.0) flags.factor = 0.35;
  if (flags.snapshots > 16) flags.snapshots = 16;
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Ablation: interactive caching — LRU (paper) vs FIFO "
              "eviction\n");
  PrintDatasetBanner(**experiment);

  std::vector<int> session =
      MakeSession((*experiment)->options().spec.num_snapshots,
                  /*touches=*/60, /*seed=*/20040301);
  std::printf("session: %d interactive views\n",
              static_cast<int>(session.size()));

  // Unit footprint ≈ mesh + 3 quantities; sweep cache capacity in units.
  const mesh::DatasetSpec& spec = (*experiment)->options().spec;
  int64_t unit_bytes =
      static_cast<int64_t>(spec.ExpectedNodes() * 1.05 * 8) * 6 +
      spec.ExpectedTets() * 16;

  workloads::PrintHeader("cache capacity sweep");
  std::printf("  %-10s %-6s %8s %8s %10s %16s\n", "capacity", "policy",
              "reads", "hits", "evictions", "visible I/O(s)");
  {
    // Baseline: no caching at all (delete after every view).
    auto result = RunSession(experiment->get(), session,
                             EvictionPolicy::kLru, 2 * unit_bytes,
                             /*caching_enabled=*/false);
    if (!result.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-10s %-6s %8lld %8lld %10lld %16.1f\n", "-", "none",
                static_cast<long long>(result->reads),
                static_cast<long long>(result->hits),
                static_cast<long long>(result->evictions),
                result->visible_io_seconds);
  }
  for (int capacity : {2, 4, 8, 12}) {
    for (EvictionPolicy policy :
         {EvictionPolicy::kLru, EvictionPolicy::kFifo}) {
      auto result = RunSession(experiment->get(), session, policy,
                               capacity * unit_bytes * 11 / 10);
      if (!result.ok()) {
        std::fprintf(stderr, "session failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-10s %-6s %8lld %8lld %10lld %16.1f\n",
                  StrCat(capacity, " units").c_str(),
                  policy == EvictionPolicy::kLru ? "LRU" : "FIFO",
                  static_cast<long long>(result->reads),
                  static_cast<long long>(result->hits),
                  static_cast<long long>(result->evictions),
                  result->visible_io_seconds);
    }
  }
  std::printf("  (caching is the headline win over 'none'; LRU keeps the "
              "hot reference snapshot resident a little better than "
              "FIFO)\n");
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
