// Ablation (DESIGN.md §3, decision 1): processing-unit granularity. The
// paper lets developers pick the unit — "records read from the same input
// file", "multiple input files that are part of the same time-step
// snapshot ... a coarser prefetching granularity", or finer subsets. This
// harness runs the same batch visualization with units of one file, one
// snapshot (Voyager's choice), and groups of two/four snapshots, and
// reports visible I/O and total time for each.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "gsdf/reader.h"
#include "sim/platform.h"
#include "workloads/block_schema.h"
#include "workloads/experiment.h"
#include "workloads/platform_runtime.h"
#include "workloads/report.h"
#include "workloads/snapshot_io.h"
#include "workloads/test_spec.h"

namespace godiva::bench {
namespace {

using workloads::Experiment;
using workloads::PlatformRuntime;
using workloads::VizTestSpec;

struct GranularityResult {
  double total_seconds = 0;
  double visible_io_seconds = 0;
  int64_t units = 0;
};

// Reads one file (all of its blocks, mesh + `quantities`) into `db`.
Status ReadOneFile(PlatformRuntime* runtime, const std::string& path,
                   int snapshot, const std::vector<std::string>& quantities,
                   Gbo* db) {
  GODIVA_ASSIGN_OR_RETURN(auto reader,
                          gsdf::Reader::Open(runtime->env(), path));
  GODIVA_ASSIGN_OR_RETURN(const gsdf::DatasetInfo* blocks_info,
                          reader->Find("blocks"));
  std::vector<int32_t> blocks(
      static_cast<size_t>(blocks_info->num_elements()));
  GODIVA_RETURN_IF_ERROR(reader->Read(
      "blocks", blocks.data(), static_cast<int64_t>(blocks.size()) * 4));
  std::vector<std::string> fields = {"x", "y", "z", "conn"};
  fields.insert(fields.end(), quantities.begin(), quantities.end());
  for (int32_t block_id : blocks) {
    GODIVA_ASSIGN_OR_RETURN(Record * record,
                            db->NewRecord(workloads::kBlockRecordType));
    std::memcpy(*record->FieldBuffer(workloads::kFieldBlockId), &block_id,
                4);
    int32_t snap32 = snapshot;
    std::memcpy(*record->FieldBuffer(workloads::kFieldSnapshotId), &snap32,
                4);
    for (const std::string& field : fields) {
      GODIVA_ASSIGN_OR_RETURN(
          const gsdf::DatasetInfo* info,
          reader->Find(mesh::BlockDatasetName(block_id, field)));
      GODIVA_ASSIGN_OR_RETURN(
          void* buffer, db->AllocFieldBuffer(record, field, info->nbytes));
      GODIVA_RETURN_IF_ERROR(
          reader->Read(info->name, buffer, info->nbytes));
      runtime->ChargeDecode(info->nbytes);
    }
    GODIVA_RETURN_IF_ERROR(db->CommitRecord(record));
  }
  return Status::Ok();
}

// `group` = snapshots per unit; 0 = one unit per file.
Result<GranularityResult> RunWithGranularity(Experiment* experiment,
                                             int group,
                                             const VizTestSpec& test,
                                             double compute_mib_per_snap) {
  PlatformRuntime runtime(PlatformProfile::Engle(),
                          experiment->options().time_scale,
                          experiment->env());
  const mesh::DatasetSpec& spec = experiment->options().spec;
  const mesh::SnapshotDataset& dataset = experiment->dataset();
  std::vector<std::string> quantities = test.AllQuantities();

  Gbo db;  // multi-thread build
  GODIVA_RETURN_IF_ERROR(workloads::DefineBlockSchema(&db));

  // units_for[s] = units that must be ready before processing snapshot s;
  // delete_after[s] = units released after snapshot s.
  std::vector<std::vector<std::string>> units_for(
      static_cast<size_t>(spec.num_snapshots));
  std::vector<std::vector<std::string>> delete_after(
      static_cast<size_t>(spec.num_snapshots));
  int64_t unit_count = 0;

  if (group == 0) {
    for (int s = 0; s < spec.num_snapshots; ++s) {
      for (int f = 0; f < spec.files_per_snapshot; ++f) {
        std::string unit = StrFormat("file_%04d_%02d", s, f);
        std::string path = dataset.files[static_cast<size_t>(
            s * spec.files_per_snapshot + f)];
        GODIVA_RETURN_IF_ERROR(db.AddUnit(
            unit, [&runtime, path, s, quantities](
                      Gbo* g, const std::string&) -> Status {
              return ReadOneFile(&runtime, path, s, quantities, g);
            }));
        units_for[static_cast<size_t>(s)].push_back(unit);
        delete_after[static_cast<size_t>(s)].push_back(unit);
        ++unit_count;
      }
    }
  } else {
    for (int s = 0; s < spec.num_snapshots; s += group) {
      std::string unit = StrFormat("group_%04d", s);
      int end = std::min(s + group, spec.num_snapshots);
      GODIVA_RETURN_IF_ERROR(db.AddUnit(
          unit, [&runtime, &dataset, s, end, quantities](
                    Gbo* g, const std::string&) -> Status {
            for (int snap = s; snap < end; ++snap) {
              for (const std::string& path : dataset.SnapshotFiles(snap)) {
                GODIVA_RETURN_IF_ERROR(
                    ReadOneFile(&runtime, path, snap, quantities, g));
              }
            }
            return Status::Ok();
          }));
      for (int snap = s; snap < end; ++snap) {
        units_for[static_cast<size_t>(snap)].push_back(unit);
      }
      delete_after[static_cast<size_t>(end - 1)].push_back(unit);
      ++unit_count;
    }
  }

  Stopwatch total;
  for (int s = 0; s < spec.num_snapshots; ++s) {
    for (const std::string& unit : units_for[static_cast<size_t>(s)]) {
      GODIVA_RETURN_IF_ERROR(db.WaitUnit(unit));
    }
    runtime.ChargeCompute(test.compute_seconds_per_mib *
                          compute_mib_per_snap);
    for (const std::string& unit :
         delete_after[static_cast<size_t>(s)]) {
      GODIVA_RETURN_IF_ERROR(db.DeleteUnit(unit));
    }
  }
  GranularityResult out;
  double scale = runtime.scale().scale();
  out.total_seconds = total.ElapsedSeconds() / scale;
  out.visible_io_seconds = db.stats().visible_io_seconds / scale;
  out.units = unit_count;
  return out;
}

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  if (flags.factor >= 1.0) flags.factor = 0.35;  // ablation runs 4 configs
  auto experiment = Experiment::Create(flags.ToOptions());
  if (!experiment.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 experiment.status().ToString().c_str());
    return 1;
  }
  std::printf("Ablation: processing-unit granularity (batch mode, Engle, "
              "medium test)\n");
  PrintDatasetBanner(**experiment);

  VizTestSpec test = VizTestSpec::Medium();
  // Modeled processing input per snapshot: mesh per pass + pass fields.
  const mesh::DatasetSpec& spec = (*experiment)->options().spec;
  double node_mib = static_cast<double>(spec.ExpectedNodes()) * 1.05 * 8 /
                    (1024 * 1024);
  double mesh_mib =
      node_mib * 3 +
      static_cast<double>(spec.ExpectedTets()) * 16 / (1024 * 1024);
  double compute_mib = 0;
  for (const workloads::RenderPass& pass : test.passes) {
    compute_mib +=
        mesh_mib + node_mib * static_cast<double>(pass.quantities.size());
  }

  workloads::PrintHeader("unit granularity sweep");
  std::printf("  %-22s %8s %12s %16s\n", "unit", "units", "total(s)",
              "visible I/O(s)");
  struct Config {
    const char* label;
    int group;
  };
  const Config kConfigs[] = {
      {"one file", 0},
      {"one snapshot (paper)", 1},
      {"two snapshots", 2},
      {"four snapshots", 4},
  };
  for (const Config& config : kConfigs) {
    auto result = RunWithGranularity(experiment->get(), config.group, test,
                                     compute_mib);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-22s %8lld %12.1f %16.1f\n", config.label,
                static_cast<long long>(result->units),
                result->total_seconds, result->visible_io_seconds);
  }
  std::printf("  (coarser units raise the first-wait cost and memory "
              "footprint; the paper's per-snapshot choice balances both)\n");
  return 0;
}

}  // namespace
}  // namespace godiva::bench

int main(int argc, char** argv) { return godiva::bench::Run(argc, argv); }
