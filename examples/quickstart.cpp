// Quickstart: the paper's §3 walkthrough on a working database.
//
//  1. Define the Table-1 "fluid" record type (defineField/defineRecord/
//     insertField/commitRecordType).
//  2. Write two small gsdf input files and register them as processing
//     units with developer-supplied read functions (addUnit).
//  3. Let the background I/O thread prefetch them; wait, query field
//     buffers by key (waitUnit/getFieldBuffer), process, delete
//     (deleteUnit) — exactly the sample main() from §3.3.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/gbo.h"
#include "core/key_util.h"
#include "core/options.h"
#include "core/record.h"
#include "gsdf/reader.h"
#include "gsdf/writer.h"
#include "sim/sim_env.h"

namespace {

using namespace godiva;  // example code; keep the listing close to §3.3

// Writes one input file holding a 10×10 block: coordinates, pressure and
// temperature arrays, the way a simulation snapshot would.
Status WriteInputFile(Env* env, const std::string& path,
                      const std::string& step_id) {
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<gsdf::Writer> writer,
                          gsdf::Writer::Create(env, path));
  std::vector<double> coords(101);
  for (size_t i = 0; i < coords.size(); ++i) coords[i] = i * 0.01;
  std::vector<double> pressure(10000);
  std::vector<double> temperature(10000);
  for (int i = 0; i < 10000; ++i) {
    pressure[i] = 101325.0 + i;
    temperature[i] = 300.0 + 0.001 * i;
  }
  writer->SetFileAttribute("time-step", step_id);
  GODIVA_RETURN_IF_ERROR(writer->AddDataset(
      "x", DataType::kFloat64, coords.data(), 101 * 8));
  GODIVA_RETURN_IF_ERROR(writer->AddDataset(
      "y", DataType::kFloat64, coords.data(), 101 * 8));
  GODIVA_RETURN_IF_ERROR(writer->AddDataset(
      "pressure", DataType::kFloat64, pressure.data(), 10000 * 8));
  GODIVA_RETURN_IF_ERROR(writer->AddDataset(
      "temperature", DataType::kFloat64, temperature.data(), 10000 * 8));
  return writer->Finish();
}

// The developer-supplied read function (paper Figure 1): creates records
// in the GODIVA database and fills their buffers from the input file.
Status ReadFluidFile(Env* env, Gbo* godiva, const std::string& unit_name) {
  GODIVA_ASSIGN_OR_RETURN(std::unique_ptr<gsdf::Reader> reader,
                          gsdf::Reader::Open(env, unit_name));
  GODIVA_ASSIGN_OR_RETURN(Record * record, godiva->NewRecord("fluid"));

  // Key fields (fixed size, eagerly allocated).
  std::memcpy(*record->FieldBuffer("block id"),
              PadKey("block_0001", 11).data(), 11);
  const std::string* step = nullptr;
  for (const auto& [key, value] : reader->file_attributes()) {
    if (key == "time-step") step = &value;
  }
  if (step == nullptr) return DataLossError("missing time-step attribute");
  std::memcpy(*record->FieldBuffer("time-step id"), PadKey(*step, 9).data(),
              9);

  // Array fields: sizes discovered from the file (allocFieldBuffer).
  for (const char* field : {"x", "y", "pressure", "temperature"}) {
    std::string dataset = field;
    std::string field_name = dataset == "x"   ? "x coordinates"
                             : dataset == "y" ? "y coordinates"
                                              : dataset;
    GODIVA_ASSIGN_OR_RETURN(const gsdf::DatasetInfo* info,
                            reader->Find(dataset));
    GODIVA_ASSIGN_OR_RETURN(
        void* buffer,
        godiva->AllocFieldBuffer(record, field_name, info->nbytes));
    GODIVA_RETURN_IF_ERROR(reader->Read(dataset, buffer, info->nbytes));
  }
  return godiva->CommitRecord(record);
}

Status RunQuickstart() {
  // Input files live in an in-memory Env here; swap in GetPosixEnv() to
  // read real files.
  SimEnv env{SimEnv::Options{}};
  GODIVA_RETURN_IF_ERROR(WriteInputFile(&env, "fluid_file1", "0.000025"));
  GODIVA_RETURN_IF_ERROR(WriteInputFile(&env, "fluid_file2", "0.000050"));

  // godiva = new GBO(400): create the database with a memory budget.
  Gbo godiva(GboOptions::WithMemoryMb(400));

  // Define the Table 1 schema.
  GODIVA_RETURN_IF_ERROR(godiva.DefineField("block id", DataType::kString, 11));
  GODIVA_RETURN_IF_ERROR(
      godiva.DefineField("time-step id", DataType::kString, 9));
  GODIVA_RETURN_IF_ERROR(
      godiva.DefineField("x coordinates", DataType::kFloat64, kUnknownSize));
  GODIVA_RETURN_IF_ERROR(
      godiva.DefineField("y coordinates", DataType::kFloat64, kUnknownSize));
  GODIVA_RETURN_IF_ERROR(
      godiva.DefineField("pressure", DataType::kFloat64, kUnknownSize));
  GODIVA_RETURN_IF_ERROR(
      godiva.DefineField("temperature", DataType::kFloat64, kUnknownSize));
  GODIVA_RETURN_IF_ERROR(godiva.DefineRecord("fluid", 2));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "block id", true));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "time-step id", true));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "x coordinates", false));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "y coordinates", false));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "pressure", false));
  GODIVA_RETURN_IF_ERROR(godiva.InsertField("fluid", "temperature", false));
  GODIVA_RETURN_IF_ERROR(godiva.CommitRecordType("fluid"));

  // Add all units; the I/O thread prefetches them in order.
  Gbo::ReadFn read_file = [&env](Gbo* db, const std::string& unit) {
    return ReadFluidFile(&env, db, unit);
  };
  GODIVA_RETURN_IF_ERROR(godiva.AddUnit("fluid_file1", read_file));
  GODIVA_RETURN_IF_ERROR(godiva.AddUnit("fluid_file2", read_file));

  // Process each unit: wait, query by key, compute, delete.
  const char* steps[] = {"0.000025", "0.000050"};
  const char* units[] = {"fluid_file1", "fluid_file2"};
  for (int i = 0; i < 2; ++i) {
    GODIVA_RETURN_IF_ERROR(godiva.WaitUnit(units[i]));
    std::vector<std::string> key = {PadKey("block_0001", 11),
                                    PadKey(steps[i], 9)};
    GODIVA_ASSIGN_OR_RETURN(void* pressure_buffer,
                            godiva.GetFieldBuffer("fluid", "pressure", key));
    GODIVA_ASSIGN_OR_RETURN(
        int64_t pressure_bytes,
        godiva.GetFieldBufferSize("fluid", "pressure", key));
    const double* pressure = static_cast<const double*>(pressure_buffer);
    int64_t n = pressure_bytes / 8;
    double mean = 0;
    for (int64_t j = 0; j < n; ++j) mean += pressure[j];
    mean /= static_cast<double>(n);
    std::printf("unit %-12s time-step %s: %lld pressure values, mean %.1f Pa\n",
                units[i], steps[i], static_cast<long long>(n), mean);
    GODIVA_RETURN_IF_ERROR(godiva.DeleteUnit(units[i]));
  }

  std::printf("\ndatabase stats: %s\n", godiva.stats().ToString().c_str());
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = RunQuickstart();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("quickstart OK\n");
  return 0;
}
