// Batch-mode visualization à la Voyager: generate a synthetic rocket
// dataset, announce every snapshot unit up front, and let the background
// I/O thread prefetch while the main thread extracts a von Mises stress
// isosurface plus a cutting plane and renders each snapshot to a PPM frame
// (a movie, frame by frame). Frames are written to ./godiva_frames/ on the
// real filesystem.
//
// Usage: batch_movie [frames_dir]
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/options.h"
#include "mesh/dataset_spec.h"
#include "mesh/snapshot_writer.h"
#include "sim/env.h"
#include "sim/platform.h"
#include "sim/sim_env.h"
#include "viz/camera.h"
#include "viz/colormap.h"
#include "viz/rasterizer.h"
#include "workloads/block_schema.h"
#include "workloads/platform_runtime.h"
#include "workloads/processing.h"
#include "workloads/snapshot_io.h"
#include "workloads/test_spec.h"
#include "workloads/voyager.h"

namespace {

using namespace godiva;
using workloads::BlockView;

Status RunBatchMovie(const std::string& frames_dir) {
  // Synthetic dataset, instant in-memory generation.
  SimEnv env{SimEnv::Options{}};
  mesh::DatasetSpec spec = mesh::DatasetSpec::TitanIVScaled(0.2);
  spec.num_snapshots = 12;
  spec.checksums = true;  // so the verified read path below has CRCs
  GODIVA_ASSIGN_OR_RETURN(mesh::SnapshotDataset dataset,
                          mesh::WriteSnapshotDataset(&env, spec, "data"));
  std::printf("dataset: %d snapshots, %d blocks, %s\n", spec.num_snapshots,
              spec.num_blocks, FormatBytes(dataset.total_bytes).c_str());

  // A fast-replay platform so the prefetching is observable but quick.
  TimeScale wall_scale(0.002);
  workloads::PlatformRuntime runtime(PlatformProfile::Engle(), 0.002, &env);

  Gbo godiva;  // multi-thread: background prefetching on
  GODIVA_RETURN_IF_ERROR(workloads::DefineBlockSchema(&godiva));
  workloads::VizTestSpec test = workloads::VizTestSpec::Medium();
  std::vector<std::string> quantities = test.AllQuantities();
  // Verify dataset checksums while loading; a corrupt read surfaces as
  // DATA_LOSS, which the default GboOptions retry policy re-reads.
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &dataset, quantities,
      workloads::SnapshotReadOptions{.verify_checksums = true});

  // Batch mode: announce everything up front.
  for (int s = 0; s < spec.num_snapshots; ++s) {
    GODIVA_RETURN_IF_ERROR(godiva.AddUnit(workloads::SnapshotUnitName(s),
                                          read_fn));
  }

  viz::Camera::Options camera_options;
  camera_options.position = {3.2, 2.6, -3.5};
  camera_options.target = {0.5, 0.5, 4.0};

  for (int s = 0; s < spec.num_snapshots; ++s) {
    std::string unit = workloads::SnapshotUnitName(s);
    GODIVA_RETURN_IF_ERROR(godiva.WaitUnit(unit));

    // Build views over the GODIVA buffers for every block.
    std::vector<BlockView> views;
    for (int32_t b = 0; b < spec.num_blocks; ++b) {
      GODIVA_ASSIGN_OR_RETURN(
          Record * record,
          godiva.FindRecord(workloads::kBlockRecordType,
                            workloads::BlockKey(b, s)));
      BlockView view;
      view.block_id = b;
      auto dspan = [&](const char* f) -> Result<std::span<const double>> {
        GODIVA_ASSIGN_OR_RETURN(void* p, record->FieldBuffer(f));
        GODIVA_ASSIGN_OR_RETURN(int64_t n, record->FieldBufferSize(f));
        return std::span<const double>(static_cast<const double*>(p),
                                       static_cast<size_t>(n / 8));
      };
      GODIVA_ASSIGN_OR_RETURN(std::span<const double> x,
                              dspan(workloads::kFieldX));
      GODIVA_ASSIGN_OR_RETURN(std::span<const double> y,
                              dspan(workloads::kFieldY));
      GODIVA_ASSIGN_OR_RETURN(std::span<const double> z,
                              dspan(workloads::kFieldZ));
      GODIVA_ASSIGN_OR_RETURN(void* conn_ptr,
                              record->FieldBuffer(workloads::kFieldConn));
      GODIVA_ASSIGN_OR_RETURN(int64_t conn_bytes,
                              record->FieldBufferSize(workloads::kFieldConn));
      view.geometry = viz::BlockGeometry{
          x, y, z,
          std::span<const int32_t>(static_cast<const int32_t*>(conn_ptr),
                                   static_cast<size_t>(conn_bytes / 4))};
      for (const std::string& quantity : quantities) {
        GODIVA_ASSIGN_OR_RETURN(std::span<const double> values,
                                dspan(quantity.c_str()));
        view.fields[quantity] = values;
      }
      views.push_back(std::move(view));
    }

    // Real extraction + rendering on every block.
    viz::Rasterizer rasterizer(480, 360);
    workloads::ProcessOptions process;
    process.real_work_stride = 1;
    process.rasterizer = &rasterizer;
    int64_t triangles = 0;
    for (const workloads::RenderPass& pass : test.passes) {
      GODIVA_ASSIGN_OR_RETURN(workloads::PassResult result,
                              workloads::ProcessPass(pass, views, process));
      triangles += result.triangles;
    }
    std::string frame =
        StrFormat("%s/frame_%03d.ppm", frames_dir.c_str(), s);
    GODIVA_RETURN_IF_ERROR(
        rasterizer.image().WritePpm(GetPosixEnv(), frame));
    std::printf("frame %2d: %6lld triangles -> %s\n", s,
                static_cast<long long>(triangles), frame.c_str());

    // Batch mode knows data will not be revisited.
    GODIVA_RETURN_IF_ERROR(godiva.DeleteUnit(unit));
  }

  GboStats stats = godiva.stats();
  std::printf("\nprefetched %lld units in the background; visible I/O %s\n",
              static_cast<long long>(stats.units_prefetched),
              FormatSeconds(stats.visible_io_seconds).c_str());
  if (stats.read_retries > 0) {
    std::printf("recovered from %lld transient read failures\n",
                static_cast<long long>(stats.read_retries));
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::string frames_dir = argc > 1 ? argv[1] : "godiva_frames";
  // Ensure the output directory exists (real filesystem).
  std::string command = "mkdir -p '" + frames_dir + "'";
  if (std::system(command.c_str()) != 0) {
    std::fprintf(stderr, "cannot create %s\n", frames_dir.c_str());
    return 1;
  }
  Status status = RunBatchMovie(frames_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "batch_movie failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("batch_movie OK\n");
  return 0;
}
