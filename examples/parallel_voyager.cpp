// Parallel batch visualization: four emulated Voyager processes, each with
// its own GODIVA database and its own (virtual) node, splitting the
// snapshots round-robin — the paper's parallel deployment ("Each processor
// has its own database, which manages its local data, and there is no need
// for any communication between the GBO objects", §3.3).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "mesh/dataset_spec.h"
#include "mesh/snapshot_writer.h"
#include "sim/platform.h"
#include "sim/sim_env.h"
#include "workloads/block_schema.h"
#include "workloads/platform_runtime.h"
#include "workloads/snapshot_io.h"

namespace {

using namespace godiva;

constexpr int kProcesses = 4;

struct ProcessResult {
  Status status;
  int snapshots = 0;
  double visible_io_seconds = 0;
  int64_t records = 0;
};

ProcessResult RunProcess(int rank, const SimEnv& shared_env,
                         const mesh::SnapshotDataset& dataset) {
  ProcessResult result;
  // Own node: own disk replica, own CPUs, own GODIVA database.
  std::unique_ptr<SimEnv> env = shared_env.Clone(SimEnv::Options{});
  workloads::PlatformRuntime runtime(PlatformProfile::Turing(), 0.002,
                                     env.get());
  Gbo godiva;
  result.status = workloads::DefineBlockSchema(&godiva);
  if (!result.status.ok()) return result;
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &dataset, {"sxx", "syy", "szz", "sxy", "syz", "szx"});

  const mesh::DatasetSpec& spec = dataset.spec;
  std::vector<int> mine;
  for (int s = rank; s < spec.num_snapshots; s += kProcesses) {
    mine.push_back(s);
  }
  for (int s : mine) {
    result.status = godiva.AddUnit(workloads::SnapshotUnitName(s), read_fn);
    if (!result.status.ok()) return result;
  }
  for (int s : mine) {
    std::string unit = workloads::SnapshotUnitName(s);
    result.status = godiva.WaitUnit(unit);
    if (!result.status.ok()) return result;
    // "Process" the snapshot: a fixed chunk of modeled computation.
    runtime.ChargeCompute(2.0);
    result.status = godiva.DeleteUnit(unit);
    if (!result.status.ok()) return result;
    ++result.snapshots;
  }
  GboStats stats = godiva.stats();
  result.visible_io_seconds =
      stats.visible_io_seconds / runtime.scale().scale();
  result.records = stats.records_committed;
  return result;
}

Status RunParallelVoyager() {
  SimEnv env{SimEnv::Options{}};
  mesh::DatasetSpec spec = mesh::DatasetSpec::TitanIVScaled(0.15);
  spec.num_snapshots = 16;
  GODIVA_ASSIGN_OR_RETURN(mesh::SnapshotDataset dataset,
                          mesh::WriteSnapshotDataset(&env, spec, "data"));
  std::printf("%d processes over %d snapshots (%s of input)\n", kProcesses,
              spec.num_snapshots, FormatBytes(dataset.total_bytes).c_str());

  std::vector<ProcessResult> results(kProcesses);
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (int rank = 0; rank < kProcesses; ++rank) {
    threads.emplace_back([&, rank] {
      results[static_cast<size_t>(rank)] = RunProcess(rank, env, dataset);
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int rank = 0; rank < kProcesses; ++rank) {
    const ProcessResult& result = results[static_cast<size_t>(rank)];
    GODIVA_RETURN_IF_ERROR(result.status);
    std::printf(
        "  process %d: %2d snapshots, %lld records, visible I/O %.2f s "
        "(modeled)\n",
        rank, result.snapshots, static_cast<long long>(result.records),
        result.visible_io_seconds);
  }
  std::printf("wall time %.2f s for all %d processes\n",
              wall.ElapsedSeconds(), kProcesses);
  return Status::Ok();
}

}  // namespace

int main() {
  Status status = RunParallelVoyager();
  if (!status.ok()) {
    std::fprintf(stderr, "parallel_voyager failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("parallel_voyager OK\n");
  return 0;
}
