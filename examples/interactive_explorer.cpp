// Interactive-mode visualization: the user browses snapshots in an
// unpredictable order, so nothing can be prefetched — instead GODIVA's
// caching keeps recently finished units resident (paper §3.2: "an
// interactive tool perhaps will not delete units voluntarily, hoping that
// the user revisits some data"). The example replays a scripted session,
// printing the response time of every request so cache hits are visible.
//
// Usage: interactive_explorer [snapshot indices...]
//   e.g. interactive_explorer 0 1 2 1 0 5 0 5 3
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/gbo.h"
#include "core/options.h"
#include "mesh/dataset_spec.h"
#include "mesh/snapshot_writer.h"
#include "sim/platform.h"
#include "sim/sim_env.h"
#include "workloads/block_schema.h"
#include "workloads/platform_runtime.h"
#include "workloads/snapshot_io.h"

namespace {

using namespace godiva;

Status RunExplorer(const std::vector<int>& session) {
  SimEnv env{SimEnv::Options{}};
  mesh::DatasetSpec spec = mesh::DatasetSpec::TitanIVScaled(0.15);
  spec.num_snapshots = 8;
  GODIVA_ASSIGN_OR_RETURN(mesh::SnapshotDataset dataset,
                          mesh::WriteSnapshotDataset(&env, spec, "data"));

  // Replay on the Engle profile at 1/100 speed so reads have visible cost.
  workloads::PlatformRuntime runtime(PlatformProfile::Engle(), 0.01, &env);

  GboOptions options = GboOptions::SingleThread();  // no prefetch thread
  options.memory_limit_bytes = 64 * 1024 * 1024;
  Gbo godiva(options);
  GODIVA_RETURN_IF_ERROR(workloads::DefineBlockSchema(&godiva));
  Gbo::ReadFn read_fn = workloads::MakeSnapshotReadFn(
      &runtime, &dataset, {"velx", "vely", "velz"});

  std::printf("interactive session over %d snapshots (cache %s)\n\n",
              spec.num_snapshots,
              FormatBytes(options.memory_limit_bytes).c_str());
  std::printf("  %-10s %-12s %12s\n", "request", "outcome", "response");
  for (int raw : session) {
    int snapshot = raw % spec.num_snapshots;
    std::string unit = workloads::SnapshotUnitName(snapshot);
    int64_t hits_before = godiva.stats().unit_cache_hits;
    Stopwatch response;
    // Interactive tools "may simply use the explicit readUnit interface to
    // perform foreground blocking I/O" (§3.2).
    GODIVA_RETURN_IF_ERROR(godiva.ReadUnit(unit, read_fn));
    double seconds = response.ElapsedSeconds() / runtime.scale().scale();
    bool hit = godiva.stats().unit_cache_hits > hits_before;
    // ... user looks at the image ...
    // Mark finished instead of deleting: the data stays cached.
    GODIVA_RETURN_IF_ERROR(godiva.FinishUnit(unit));
    std::printf("  view %-5d %-12s %9.2f s\n", snapshot,
                hit ? "cache hit" : "read from disk", seconds);
  }

  GboStats stats = godiva.stats();
  std::printf("\nsession summary: %lld disk reads, %lld cache hits, "
              "%lld evictions, visible I/O %s (modeled %s)\n",
              static_cast<long long>(stats.units_read_foreground),
              static_cast<long long>(stats.unit_cache_hits),
              static_cast<long long>(stats.units_evicted),
              FormatSeconds(stats.visible_io_seconds).c_str(),
              FormatSeconds(stats.visible_io_seconds /
                            runtime.scale().scale())
                  .c_str());
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> session;
  for (int i = 1; i < argc; ++i) session.push_back(std::atoi(argv[i]));
  if (session.empty()) {
    // A browsing pattern with the locality the paper describes: the user
    // flips back and forth between two time-steps, then scans onward.
    session = {0, 1, 0, 1, 2, 3, 2, 3, 4, 5, 4, 0, 6, 7, 6, 0};
  }
  godiva::Status status = RunExplorer(session);
  if (!status.ok()) {
    std::fprintf(stderr, "interactive_explorer failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("interactive_explorer OK\n");
  return 0;
}
